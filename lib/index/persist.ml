module Crc32 = Xks_util.Crc32
module Failpoint = Xks_robust.Failpoint

type table = (string * int * int array) list

let magic = "XKSIDX2\n"
let magic_v1 = "XKSIDX1\n"
let read_site = "persist.read"

(* Unsigned LEB128. *)
let write_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Persist: negative varint";
  go n

(* [limit] bounds reads to the enclosing section so a corrupt length
   cannot make one block consume its neighbours. *)
type reader = { data : string; mutable pos : int; mutable limit : int }

let reader data = { data; pos = 0; limit = String.length data }

let read_byte r =
  if r.pos >= r.limit then
    failwith (Printf.sprintf "Persist: truncated index at byte %d" r.pos);
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

(* Rejects encodings past 9 bytes (shift 63): on 64-bit OCaml those
   either overflow into negative ints or do not fit an int at all. *)
let read_varint r =
  let rec go shift acc =
    if shift > 56 then
      failwith (Printf.sprintf "Persist: varint overflow at byte %d" r.pos);
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let n = go 0 0 in
  if n < 0 then
    failwith (Printf.sprintf "Persist: negative varint at byte %d" r.pos);
  n

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let read_string r =
  let n = read_varint r in
  (* Compare against the remaining bytes, not [pos + n]: a corrupt
     length near [max_int] would overflow the addition. *)
  if n > r.limit - r.pos then
    failwith (Printf.sprintf "Persist: truncated index at byte %d" r.pos);
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let dump = Inverted.to_rows
let of_table = Inverted.of_rows

(* One word's section: word, occurrence count, delta-coded posting. *)
let encode_block buf (w, occurrences, posting) =
  write_string buf w;
  write_varint buf occurrences;
  write_varint buf (Array.length posting);
  (* Sorted ids: store the first id, then the gaps. *)
  ignore
    (Array.fold_left
       (fun prev id ->
         write_varint buf (id - prev);
         id)
       0 posting)

let decode_block r =
  let w = read_string r in
  let occurrences = read_varint r in
  let len = read_varint r in
  (* Each posting entry takes at least one byte, so a length beyond the
     remaining bytes is corrupt — reject it before allocating. *)
  if len > r.limit - r.pos then
    failwith
      (Printf.sprintf "Persist: posting length %d exceeds input at byte %d" len
         r.pos);
  let posting = Array.make len 0 in
  let prev = ref 0 in
  for i = 0 to len - 1 do
    prev := !prev + read_varint r;
    posting.(i) <- !prev
  done;
  (w, occurrences, posting)

(* Layout: magic, u32le CRC of everything after this field, varint word
   count, then per word [varint length][u32le CRC][block bytes].  The
   per-word frame lets [decode] localise damage to one word even though
   the global CRC only says "something is wrong". *)
let encode rows =
  let buf = Buffer.create (1 lsl 16) in
  write_varint buf (List.length rows);
  let scratch = Buffer.create 256 in
  List.iter
    (fun row ->
      Buffer.clear scratch;
      encode_block scratch row;
      let block = Buffer.contents scratch in
      write_varint buf (String.length block);
      Buffer.add_string buf (Crc32.to_le_bytes (Crc32.string block));
      Buffer.add_string buf block)
    rows;
  let payload = Buffer.contents buf in
  magic ^ Crc32.to_le_bytes (Crc32.string payload) ^ payload

let read_crc r =
  if r.pos + 4 > r.limit then
    failwith (Printf.sprintf "Persist: truncated index at byte %d" r.pos);
  let c = Crc32.of_le_bytes r.data ~pos:r.pos in
  r.pos <- r.pos + 4;
  c

let decode_v2 data =
  let r = reader data in
  r.pos <- String.length magic;
  let stored_crc = read_crc r in
  let payload_ok =
    Crc32.sub data ~pos:r.pos ~len:(String.length data - r.pos) = stored_crc
  in
  let count = read_varint r in
  let rows =
    List.init count (fun i ->
        let damaged msg =
          failwith
            (Printf.sprintf "Persist: corrupt index: word block %d %s" i msg)
        in
        let block_len = read_varint r in
        let block_crc = read_crc r in
        let start = r.pos in
        if block_len > r.limit - start then
          damaged (Printf.sprintf "overruns the file at byte %d" start);
        if Crc32.sub data ~pos:start ~len:block_len <> block_crc then
          damaged (Printf.sprintf "(checksum mismatch at byte %d)" start);
        let saved_limit = r.limit in
        r.limit <- start + block_len;
        let ((w, _, _) as row) = decode_block r in
        if r.pos <> start + block_len then
          damaged
            (Printf.sprintf "(%S): %d trailing bytes inside the block" w
               (start + block_len - r.pos));
        r.limit <- saved_limit;
        row)
  in
  if r.pos <> String.length data then
    failwith
      (Printf.sprintf "Persist: trailing garbage at byte %d (%d bytes)" r.pos
         (String.length data - r.pos));
  if not payload_ok then
    (* Every word block checked out, so the damage is in the header
       (count field) or the global checksum itself. *)
    failwith "Persist: corrupt index: header checksum mismatch";
  rows

(* Legacy XKSIDX1 files: no checksums, still readable. *)
let decode_v1 data =
  let r = reader data in
  r.pos <- String.length magic_v1;
  let count = read_varint r in
  let rows = List.init count (fun _ -> decode_block r) in
  if r.pos <> String.length data then
    failwith
      (Printf.sprintf "Persist: trailing garbage at byte %d (%d bytes)" r.pos
         (String.length data - r.pos));
  rows

let has_magic data m =
  String.length data >= String.length m
  && String.sub data 0 (String.length m) = m

let decode data =
  if has_magic data magic then decode_v2 data
  else if has_magic data magic_v1 then decode_v1 data
  else failwith "Persist: not an xks index file"

let save path idx =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (encode (dump idx)))

let load path doc =
  of_table doc (decode (Failpoint.read_file ~site:read_site path))

let load_or_rebuild ?(log = prerr_endline) ?(save_repaired = true) path doc =
  let rebuild msg =
    log
      (Printf.sprintf
         "xks: index %s unusable (%s); rebuilding from the document" path msg);
    let idx = Inverted.build doc in
    if save_repaired then begin
      try save path idx
      with Sys_error msg ->
        log (Printf.sprintf "xks: could not re-save index %s (%s)" path msg)
    end;
    idx
  in
  match load path doc with
  | idx -> idx
  | exception Failure msg -> rebuild msg
  | exception Sys_error msg -> rebuild msg
