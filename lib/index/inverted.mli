(** Inverted keyword index.

    Maps each normalised, non-stop word to the sorted array of ids of the
    nodes whose content contains it — exactly the keyword-node sets [Di]
    that stage [getKeywordNodes] of Algorithm 1 needs.  Node ids are
    preorder ranks, so each posting list is in document (Dewey) order.

    This plays the role of the paper's PostgreSQL [value] table lookup:
    given a query, it returns the Dewey-ordered keyword-node lists.

    A {!t} is {e immutable once built}: {!build} and {!of_rows} freeze
    every posting into its final array before returning, and no query
    operation writes to the index.  {!Xks_exec} relies on this to share
    one index (and its document tree) across all pool domains without
    copies or locks; the sharing audit in [test/test_index.ml] pins the
    property (repeated {!posting} calls return the {e same} physical
    array). *)

type t

val build : Xks_xml.Tree.t -> t
(** Index every node of the document.  A node appears once in the posting
    list of each distinct word of its content. *)

val doc : t -> Xks_xml.Tree.t

val approx_cids : t -> Cid.t array
(** Per-node approximate content features ([Cid.of_words Approx] over
    {!Xks_xml.Tree.content_words}), indexed by preorder node id and
    computed once at {!build}/{!of_rows} time.  The pruning stage reads
    keyword-node features from this table instead of re-tokenising the
    document on every query — the dominant allocation source on the cold
    path before precomputation.  Owned by the index: callers must not
    mutate it. *)

val posting : t -> string -> int array
(** [posting idx w] is the sorted id array for word [w] ([w] is normalised
    with {!Xks_xml.Tokenizer.normalize} before lookup).  The returned
    array is owned by the index: callers must not mutate it.  Empty when
    the word is absent or a stop word. *)

val postings : t -> string list -> int array array
(** Posting lists for a whole query, in query order. *)

val node_count : t -> string -> int
(** Number of keyword nodes for a word: [Array.length (posting idx w)].
    Ticks the [Postings_scanned] trace counter (it fetches the list);
    prefer {!df} on the ranking path. *)

val df : t -> string -> int
(** O(1) document frequency: the posting length of [w] (normalised
    first), without fetching the list and without trace ticks — the
    idf input for {!Xks_core.Rank}.  [0] when absent or a stop word. *)

(** Corpus-level aggregates, computed once when the index is frozen
    ({!build} / {!of_rows}) — the per-query-free inputs to BM25-style
    scoring. *)
type stats = {
  nodes : int;  (** document size: number of indexed tree nodes *)
  vocabulary : int;  (** distinct indexed words *)
  total_postings : int;  (** sum of all posting-list lengths *)
  avg_posting_len : float;  (** [total_postings / vocabulary]; 0 if empty *)
  max_posting_len : int;  (** longest posting list *)
}

val stats : t -> stats

val occurrence_count : t -> string -> int
(** Total number of occurrences of the word in the document (counting
    repeats inside one node) — the frequency the paper reports next to
    each keyword. *)

val vocabulary : t -> string list
(** All indexed words, sorted. *)

val vocabulary_size : t -> int

val top_words : t -> int -> (string * int) list
(** The [n] most frequent words by occurrence count, descending. *)

(** {1 Row access (persistence support, see {!Persist})} *)

val to_rows : t -> (string * int * int array) list
(** [(word, occurrences, posting)] rows, sorted by word. *)

val of_rows : Xks_xml.Tree.t -> (string * int * int array) list -> t
(** Rebuild an index from rows.
    @raise Failure if a posting is unsorted, contains duplicates, or
    references an id outside the document. *)
