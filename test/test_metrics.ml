(* CFR / APR / APR' / Max APR (Section 5.1), plus the Trace
   observability layer. *)

module Metrics = Xks_metrics.Metrics
module Engine = Xks_core.Engine
module Trace = Xks_trace.Trace
module Json = Xks_trace.Json

let metrics_for xml query =
  let engine = Engine.of_string xml in
  let validrtf = Engine.run ~algorithm:Engine.Validrtf engine query in
  let maxmatch = Engine.run ~algorithm:Engine.Maxmatch engine query in
  Metrics.compare_results ~validrtf ~maxmatch

let test_identical_results () =
  (* Distinct keyword sets per sibling: both algorithms agree. *)
  let m = metrics_for "<r><a>w1</a><b>w2</b></r>" [ "w1"; "w2" ] in
  Alcotest.(check int) "lcas" 1 m.Metrics.lca_count;
  Alcotest.(check (float 1e-9)) "cfr" 1.0 m.Metrics.cfr;
  Alcotest.(check (float 1e-9)) "apr" 0.0 m.Metrics.apr;
  Alcotest.(check (float 1e-9)) "max apr" 0.0 m.Metrics.max_apr

let test_validrtf_prunes_more () =
  (* Q4-style redundancy: MaxMatch keeps the duplicate, ValidRTF prunes
     2 of the 9 fragment nodes. *)
  let m =
    metrics_for
      "<team><name>grizzlies</name><players><player><pos>forward</pos></player><player><pos>guard</pos></player><player><pos>forward</pos></player></players></team>"
      [ "grizzlies"; "pos" ]
  in
  Alcotest.(check int) "one lca" 1 m.Metrics.lca_count;
  Alcotest.(check (float 1e-9)) "cfr 0" 0.0 m.Metrics.cfr;
  Alcotest.(check (float 1e-3)) "apr = 2/9" (2.0 /. 9.0) m.Metrics.apr;
  Alcotest.(check (float 1e-3)) "max apr = apr (single)" m.Metrics.apr m.Metrics.max_apr;
  Alcotest.(check (float 1e-9)) "apr' drops the extreme" 0.0 m.Metrics.apr'

let test_validrtf_keeps_more () =
  (* False-positive case: ValidRTF keeps a node MaxMatch drops; fragments
     differ but ValidRTF discards nothing, so APR stays 0 while CFR < 1. *)
  let m =
    metrics_for "<r><t>w1</t><abs>w1 w2</abs><z>w3</z></r>"
      [ "w1"; "w2"; "w3" ]
  in
  Alcotest.(check (float 1e-9)) "cfr" 0.0 m.Metrics.cfr;
  Alcotest.(check (float 1e-9)) "apr" 0.0 m.Metrics.apr

let test_mismatched_lcas_rejected () =
  let engine = Engine.of_string "<r><a>w1</a><b>w1 w2</b></r>" in
  let validrtf = Engine.run ~algorithm:Engine.Validrtf engine [ "w1"; "w2" ] in
  let original =
    Engine.run ~algorithm:Engine.Maxmatch_original engine [ "w1" ]
  in
  Alcotest.check_raises "different LCA sets"
    (Invalid_argument "Metrics.compare_results: different LCA sets")
    (fun () -> ignore (Metrics.compare_results ~validrtf ~maxmatch:original))

let test_empty_results () =
  let m = metrics_for "<r><a>w1</a></r>" [ "w1"; "w9" ] in
  Alcotest.(check int) "no lcas" 0 m.Metrics.lca_count;
  Alcotest.(check (float 1e-9)) "cfr 1 by convention" 1.0 m.Metrics.cfr

(* Properties over random documents. *)

let gen_case = QCheck2.Gen.pair Helpers.gen_doc Helpers.gen_query

let print_case (doc, ws) =
  Printf.sprintf "query=%s doc=%s" (String.concat "," ws) (Helpers.print_doc doc)

let metrics_of (doc, ws) =
  let engine = Engine.of_doc doc in
  let validrtf = Engine.run ~algorithm:Engine.Validrtf engine ws in
  let maxmatch = Engine.run ~algorithm:Engine.Maxmatch engine ws in
  Metrics.compare_results ~validrtf ~maxmatch

let prop_ranges =
  QCheck2.Test.make ~name:"metric ranges: 0 <= APR' <= MaxAPR < 1, CFR in [0,1]"
    ~count:300 ~print:print_case gen_case (fun case ->
      let m = metrics_of case in
      m.Metrics.cfr >= 0.0
      && m.Metrics.cfr <= 1.0
      && m.Metrics.apr >= 0.0
      && m.Metrics.apr' >= 0.0
      && m.Metrics.apr' <= m.Metrics.max_apr +. 1e-9
      && m.Metrics.max_apr < 1.0
      && m.Metrics.common <= m.Metrics.lca_count)

let prop_cfr_one_iff_all_common =
  QCheck2.Test.make ~name:"CFR = 1 iff every fragment is common" ~count:300
    ~print:print_case gen_case (fun case ->
      let m = metrics_of case in
      (abs_float (m.Metrics.cfr -. 1.0) < 1e-9)
      = (m.Metrics.common = m.Metrics.lca_count))

(* --- Trace layer --- *)

let search_doc = "<r><a>w1 w2</a><b>w1</b><c>w2 w1</c></r>"

let test_trace_disabled_is_noop () =
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  (* Recording calls without an installed trace are dropped... *)
  Trace.add Trace.Nodes_visited 5;
  Trace.incr Trace.Postings_scanned;
  Trace.degradation "deadline";
  Alcotest.(check int) "with_span is transparent" 42
    (Trace.with_span "outer" (fun () -> 42));
  (* ...and a full untraced search leaves a later trace at zero. *)
  let engine = Engine.of_string search_doc in
  ignore (Engine.search engine [ "w1"; "w2" ]);
  let t = Trace.create () in
  List.iter
    (fun c ->
      Alcotest.(check int)
        ("fresh counter " ^ Trace.counter_name c)
        0 (Trace.counter t c))
    Trace.all_counters;
  Alcotest.(check int) "no spans" 0 (List.length (Trace.spans t));
  Alcotest.(check int) "no events" 0 (List.length (Trace.degradation_events t))

let test_trace_counters_enabled_and_monotone () =
  let engine = Engine.of_string search_doc in
  let t = Trace.create () in
  let snap1, snap2 =
    Trace.with_current t (fun () ->
        ignore (Engine.search engine [ "w1"; "w2" ]);
        let snap1 = List.map snd (Trace.counters t) in
        ignore (Engine.search engine [ "w1"; "w2" ]);
        (snap1, List.map snd (Trace.counters t)))
  in
  Alcotest.(check bool) "postings scanned" true
    (Trace.counter t Trace.Postings_scanned > 0);
  Alcotest.(check bool) "nodes visited" true
    (Trace.counter t Trace.Nodes_visited > 0);
  Alcotest.(check bool) "elca pushes" true
    (Trace.counter t Trace.Elca_pushed > 0);
  Alcotest.(check bool) "fragment nodes kept" true
    (Trace.counter t Trace.Frag_nodes_kept > 0);
  (* Counters only grow; the second identical search adds real work. *)
  List.iter2
    (fun a b -> Alcotest.(check bool) "monotone" true (b >= a))
    snap1 snap2;
  Alcotest.(check bool) "second search counted" true
    (List.nth snap2 0 > List.nth snap1 0);
  (* Not degraded: no events. *)
  Alcotest.(check int) "no degradations" 0
    (Trace.counter t Trace.Degradations)

let test_trace_spans_nest () =
  let t = Trace.create () in
  Trace.with_current t (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner" (fun () -> ());
          Trace.with_span "inner2" (fun () -> ())));
  match Trace.spans t with
  | [ outer; inner; inner2 ] ->
      Alcotest.(check string) "outer first (start order)" "outer" outer.Trace.label;
      Alcotest.(check int) "outer at depth 0" 0 outer.Trace.depth;
      Alcotest.(check string) "inner second" "inner" inner.Trace.label;
      Alcotest.(check int) "inner nested" 1 inner.Trace.depth;
      Alcotest.(check int) "inner2 nested" 1 inner2.Trace.depth;
      Alcotest.(check bool) "outer spans its children" true
        (outer.Trace.ms >= inner.Trace.ms)
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let test_trace_search_stage_spans () =
  let engine = Engine.of_string search_doc in
  let t = Trace.create () in
  Trace.with_current t (fun () -> ignore (Engine.search engine [ "w1"; "w2" ]));
  let spans = Trace.spans t in
  let find label =
    match List.find_opt (fun s -> s.Trace.label = label) spans with
    | Some s -> s
    | None -> Alcotest.failf "missing span %s" label
  in
  Alcotest.(check int) "search is outermost" 0 (find "search").Trace.depth;
  Alcotest.(check int) "validrtf under search" 1 (find "validrtf").Trace.depth;
  List.iter
    (fun stage ->
      Alcotest.(check int) (stage ^ " under validrtf") 2 (find stage).Trace.depth)
    [ "lca"; "rtf"; "prune" ];
  Alcotest.(check int) "rank under search" 1 (find "rank").Trace.depth;
  List.iter
    (fun s ->
      Alcotest.(check bool) (s.Trace.label ^ " non-negative") true
        (s.Trace.ms >= 0.0))
    spans

let test_trace_json_round_trip () =
  let engine = Engine.of_string search_doc in
  let t = Trace.create () in
  Trace.with_current t (fun () -> ignore (Engine.search engine [ "w1" ]));
  let j = Json.parse (Json.to_string (Trace.to_json t)) in
  let counters = Option.get (Json.member "counters" j) in
  Alcotest.(check bool) "postings_scanned exported positive" true
    (match
       Option.bind (Json.member "postings_scanned" counters) Json.to_int
     with
    | Some n -> n > 0
    | None -> false);
  match Option.bind (Json.member "spans" j) Json.to_list with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "spans missing from JSON"

let tests =
  [
    Alcotest.test_case "identical results" `Quick test_identical_results;
    Alcotest.test_case "ValidRTF prunes more" `Quick test_validrtf_prunes_more;
    Alcotest.test_case "ValidRTF keeps more" `Quick test_validrtf_keeps_more;
    Alcotest.test_case "mismatched LCA sets rejected" `Quick test_mismatched_lcas_rejected;
    Alcotest.test_case "empty results" `Quick test_empty_results;
    Helpers.qtest prop_ranges;
    Helpers.qtest prop_cfr_one_iff_all_common;
    Alcotest.test_case "trace disabled is a no-op" `Quick
      test_trace_disabled_is_noop;
    Alcotest.test_case "trace counters enabled + monotone" `Quick
      test_trace_counters_enabled_and_monotone;
    Alcotest.test_case "trace spans nest" `Quick test_trace_spans_nest;
    Alcotest.test_case "trace search stage spans" `Quick
      test_trace_search_stage_spans;
    Alcotest.test_case "trace json round-trip" `Quick
      test_trace_json_round_trip;
  ]
