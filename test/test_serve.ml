(* Serving layer: incremental HTTP parsing (torn reads, pipelining,
   caps, malformed syntax), response serialization, and the lock-free
   admission gate. *)

module Http = Xks_serve.Http
module Admission = Xks_robust.Admission
module Limits = Xks_robust.Limits
module Server = Xks_serve.Server

let feed_all limits chunks =
  let r = Http.reader limits in
  List.iter (Http.feed r) chunks;
  r

let expect_request r =
  match Http.next r with
  | Some req -> req
  | None -> Alcotest.fail "expected a complete request"

let expect_incomplete r =
  match Http.next r with
  | None -> ()
  | Some req -> Alcotest.fail ("unexpected complete request: " ^ req.Http.target)

(* --- basic parsing --- *)

let test_parse_simple () =
  let r =
    feed_all Http.default_limits
      [
        "GET /search?q=xml+keyword&limit=5 HTTP/1.1\r\n";
        "Host: localhost\r\nConnection: close\r\n\r\n";
      ]
  in
  let req = expect_request r in
  Alcotest.(check string) "method" "GET" req.Http.meth;
  Alcotest.(check string) "path" "/search" req.Http.path;
  Alcotest.(check int) "version" 1 req.Http.version;
  Alcotest.(check (list (pair string string)))
    "query decoded, + is space"
    [ ("q", "xml keyword"); ("limit", "5") ]
    req.Http.params;
  Alcotest.(check (option string))
    "header lookup is case-insensitive" (Some "localhost")
    (Http.header req "HOST");
  Alcotest.(check bool) "connection: close" false (Http.keep_alive req);
  Alcotest.(check int) "nothing left over" 0 (Http.pending_bytes r)

let test_parse_torn_reads () =
  let raw = "GET /health HTTP/1.1\r\nhost: a\r\n\r\n" in
  let r = Http.reader Http.default_limits in
  String.iteri
    (fun i c ->
      (* before the final byte, every prefix must be incomplete *)
      if i < String.length raw - 1 then expect_incomplete r;
      Http.feed r (String.make 1 c))
    raw;
  let req = expect_request r in
  Alcotest.(check string) "path survives torn reads" "/health" req.Http.path;
  Alcotest.(check int) "header parsed" 1 (List.length req.Http.headers)

let test_parse_bare_lf () =
  let r =
    feed_all Http.default_limits [ "GET /a HTTP/1.1\nhost: x\n\n" ]
  in
  let req = expect_request r in
  Alcotest.(check string) "bare-LF head accepted" "/a" req.Http.path;
  (* mixed endings in one head *)
  let r = feed_all Http.default_limits [ "GET /b HTTP/1.0\r\nh: v\n\r\n" ] in
  let req = expect_request r in
  Alcotest.(check int) "HTTP/1.0 version" 0 req.Http.version;
  Alcotest.(check (option string)) "mixed-ending header" (Some "v")
    (Http.header req "h")

let test_parse_pipelined () =
  let r =
    feed_all Http.default_limits
      [
        "GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\nhost: x\r\n\r\nGET /thr";
      ]
  in
  let a = expect_request r in
  let b = expect_request r in
  Alcotest.(check string) "first pipelined" "/one" a.Http.path;
  Alcotest.(check string) "second pipelined" "/two" b.Http.path;
  expect_incomplete r;
  Alcotest.(check bool) "partial third stays buffered" true
    (Http.pending_bytes r > 0);
  Http.feed r "ee HTTP/1.1\r\n\r\n";
  let c = expect_request r in
  Alcotest.(check string) "third completes across feeds" "/three" c.Http.path

let test_parse_body () =
  let r =
    feed_all Http.default_limits
      [ "POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhel" ]
  in
  (* head complete but body short: incomplete, nothing consumed *)
  expect_incomplete r;
  Http.feed r "lo tail";
  let req = expect_request r in
  Alcotest.(check string) "exact content-length body" "hello" req.Http.body;
  Alcotest.(check int) "trailing bytes stay pending" 5 (Http.pending_bytes r)

let test_parse_blank_lines_between_requests () =
  let r =
    feed_all Http.default_limits
      [ "\r\n\r\nGET /a HTTP/1.1\r\n\r\n\r\nGET /b HTTP/1.1\r\n\r\n" ]
  in
  Alcotest.(check string) "leading blank lines skipped" "/a"
    (expect_request r).Http.path;
  Alcotest.(check string) "inter-request blank lines skipped" "/b"
    (expect_request r).Http.path

(* --- caps (positioned Limit_exceeded, also on incomplete heads) --- *)

let tiny =
  {
    Http.max_request_line_bytes = 32;
    max_header_bytes = 96;
    max_headers = 3;
    max_body_bytes = 16;
  }

let expect_limit name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Limit_exceeded")
  | exception Limits.Limit_exceeded { limit; _ } ->
      Alcotest.(check string) name name limit

let test_cap_request_line () =
  (* terminated over-long request line *)
  let r =
    feed_all tiny [ "GET /" ^ String.make 40 'a' ^ " HTTP/1.1\r\n\r\n" ]
  in
  expect_limit "max_request_line_bytes" (fun () -> Http.next r);
  (* unterminated: the cap must fire before any terminator arrives *)
  let r = feed_all tiny [ String.make 40 'a' ] in
  expect_limit "max_request_line_bytes" (fun () -> Http.next r)

let test_cap_header_bytes () =
  let r =
    feed_all tiny
      [ "GET /a HTTP/1.1\r\nh: " ^ String.make 100 'v' ^ "\r\n\r\n" ]
  in
  expect_limit "max_header_bytes" (fun () -> Http.next r);
  (* same cap on a head that never terminates *)
  let r = feed_all tiny [ "GET /a HTTP/1.1\r\nh: " ^ String.make 100 'v' ] in
  expect_limit "max_header_bytes" (fun () -> Http.next r)

let test_cap_header_count () =
  let r =
    feed_all tiny [ "GET /a HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\nd: 4\r\n\r\n" ]
  in
  expect_limit "max_headers" (fun () -> Http.next r)

let test_cap_body_bytes () =
  let r =
    feed_all tiny [ "GET /a HTTP/1.1\r\ncontent-length: 1000\r\n\r\n" ]
  in
  expect_limit "max_body_bytes" (fun () -> Http.next r)

(* --- malformed syntax (the 400 channel) --- *)

let expect_bad name raw =
  let r = feed_all Http.default_limits [ raw ] in
  match Http.next r with
  | _ -> Alcotest.fail (name ^ ": expected Bad_request")
  | exception Http.Bad_request _ -> ()

let test_bad_requests () =
  expect_bad "unsupported protocol" "GET /a HTTP/2\r\n\r\n";
  expect_bad "missing protocol" "GET /a\r\n\r\n";
  expect_bad "header without colon" "GET /a HTTP/1.1\r\nbogus line\r\n\r\n";
  expect_bad "colon-first header" "GET /a HTTP/1.1\r\n: v\r\n\r\n";
  expect_bad "chunked rejected"
    "GET /a HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
  expect_bad "garbage content-length"
    "GET /a HTTP/1.1\r\ncontent-length: ten\r\n\r\n";
  expect_bad "negative content-length"
    "GET /a HTTP/1.1\r\ncontent-length: -4\r\n\r\n";
  expect_bad "bad percent escape" "GET /a%zz HTTP/1.1\r\n\r\n";
  expect_bad "truncated percent escape" "GET /a%4 HTTP/1.1\r\n\r\n"

let test_percent_decoding () =
  let r =
    feed_all Http.default_limits
      [ "GET /se%61rch?na%6De=a%2Bb+c HTTP/1.1\r\n\r\n" ]
  in
  let req = expect_request r in
  Alcotest.(check string) "path percent-decoded" "/search" req.Http.path;
  Alcotest.(check (list (pair string string)))
    "query: %2B stays plus, + becomes space"
    [ ("name", "a+b c") ]
    req.Http.params

let test_keep_alive_defaults () =
  let parse raw = expect_request (feed_all Http.default_limits [ raw ]) in
  Alcotest.(check bool) "1.1 defaults on" true
    (Http.keep_alive (parse "GET / HTTP/1.1\r\n\r\n"));
  Alcotest.(check bool) "1.0 defaults off" false
    (Http.keep_alive (parse "GET / HTTP/1.0\r\n\r\n"));
  Alcotest.(check bool) "1.0 + keep-alive on" true
    (Http.keep_alive (parse "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
  Alcotest.(check bool) "1.1 + close off" false
    (Http.keep_alive (parse "GET / HTTP/1.1\r\nconnection: close\r\n\r\n"))

let test_response_serialization () =
  let resp =
    Http.response ~headers:[ ("retry-after", "1") ] ~status:503 "{\"a\":1}"
  in
  let expect_prefix = "HTTP/1.1 503 Service Unavailable\r\n" in
  Alcotest.(check string) "status line" expect_prefix
    (String.sub resp 0 (String.length expect_prefix));
  Alcotest.(check bool) "content-length present" true
    (let sub = "content-length: 7\r\n" in
     let rec at i =
       i + String.length sub <= String.length resp
       && (String.equal (String.sub resp i (String.length sub)) sub
          || at (i + 1))
     in
     at 0);
  (* the response must parse back as exactly its body after the head *)
  match String.index_opt resp '{' with
  | Some i ->
      Alcotest.(check string) "body verbatim" "{\"a\":1}"
        (String.sub resp i (String.length resp - i))
  | None -> Alcotest.fail "body missing"

(* --- admission gate --- *)

let test_admission_capacity () =
  let a = Admission.create ~workers:2 ~queue:1 in
  Alcotest.(check int) "capacity" 3 (Admission.capacity a);
  for i = 1 to 3 do
    match Admission.try_admit a with
    | Admission.Admitted -> ()
    | Admission.Rejected _ ->
        Alcotest.failf "admission %d rejected below capacity" i
  done;
  (match Admission.try_admit a with
  | Admission.Rejected { outstanding; capacity } ->
      Alcotest.(check int) "rejection reports outstanding" 3 outstanding;
      Alcotest.(check int) "rejection reports capacity" 3 capacity
  | Admission.Admitted -> Alcotest.fail "admitted over capacity");
  Admission.release a;
  (match Admission.try_admit a with
  | Admission.Admitted -> ()
  | Admission.Rejected _ -> Alcotest.fail "slot not reusable after release");
  Alcotest.(check int) "admitted counted" 4 (Admission.admitted_total a);
  Alcotest.(check int) "rejections counted" 1 (Admission.rejected_total a);
  Alcotest.(check int) "outstanding live" 3 (Admission.outstanding a)

let test_admission_release_underflow () =
  let a = Admission.create ~workers:1 ~queue:0 in
  (match Admission.try_admit a with
  | Admission.Admitted -> ()
  | Admission.Rejected _ -> Alcotest.fail "empty gate rejected");
  Admission.release a;
  match Admission.release a with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double release must not underflow"

let test_admission_error_mapping () =
  let a = Admission.create ~workers:1 ~queue:1 in
  match Admission.to_error ~outstanding:2 a with
  | Limits.Limit_exceeded { limit; value; max; _ } ->
      Alcotest.(check string) "limit name" "admission_outstanding" limit;
      Alcotest.(check int) "value" 2 value;
      Alcotest.(check int) "max" 2 max
  | _ -> Alcotest.fail "expected Limit_exceeded"

let test_admission_concurrent () =
  (* hammer one gate from 4 domains; the slot count must never exceed
     capacity and must come back to zero *)
  let a = Admission.create ~workers:2 ~queue:2 in
  let over = Atomic.make false in
  let worker () =
    for _ = 1 to 2000 do
      match Admission.try_admit a with
      | Admission.Admitted ->
          if Admission.outstanding a > Admission.capacity a then
            Atomic.set over true;
          Admission.release a
      | Admission.Rejected _ -> Domain.cpu_relax ()
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check bool) "never over capacity" false (Atomic.get over);
  Alcotest.(check int) "drains to zero" 0 (Admission.outstanding a);
  Alcotest.(check int) "totals reconcile"
    (Admission.admitted_total a + Admission.rejected_total a)
    (4 * 2000)

(* --- server lifecycle: failed create must release what it took --- *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

(* A refused configuration raises before any resource is acquired, and
   a bind failure raises after both the socket fd and the worker pool
   exist: on every raise path out of [Server.create] the fd table must
   end where it started (the pool is shut down, the fd closed). *)
let test_create_failure_leaks_nothing () =
  if not (Sys.file_exists "/proc/self/fd") then ()
  else begin
    let engine =
      Xks_core.Engine.of_index
        (Xks_index.Inverted.build
           (Xks_xml.Parser.parse_string
              "<a><b>xml search</b><c>keyword</c></a>"))
    in
    let before = count_fds () in
    (match
       Server.create
         { (Server.default_config ~socket_path:"/tmp/xks_nofd.sock" ()) with
           Server.max_hits = 0 }
         engine
     with
    | _ -> Alcotest.fail "max_hits = 0 must be refused"
    | exception Invalid_argument _ -> ());
    (match
       Server.create
         (Server.default_config ~socket_path:"/xks-no-such-dir/xks.sock" ())
         engine
     with
    | _ -> Alcotest.fail "bind into a missing directory must fail"
    | exception Unix.Unix_error _ -> ());
    Alcotest.(check int) "no fd leaked by failed create" before (count_fds ())
  end

let tests =
  [
    Alcotest.test_case "http: simple request" `Quick test_parse_simple;
    Alcotest.test_case "http: torn reads" `Quick test_parse_torn_reads;
    Alcotest.test_case "http: bare LF" `Quick test_parse_bare_lf;
    Alcotest.test_case "http: pipelining" `Quick test_parse_pipelined;
    Alcotest.test_case "http: content-length body" `Quick test_parse_body;
    Alcotest.test_case "http: blank lines" `Quick
      test_parse_blank_lines_between_requests;
    Alcotest.test_case "http: request-line cap" `Quick test_cap_request_line;
    Alcotest.test_case "http: header-bytes cap" `Quick test_cap_header_bytes;
    Alcotest.test_case "http: header-count cap" `Quick test_cap_header_count;
    Alcotest.test_case "http: body cap" `Quick test_cap_body_bytes;
    Alcotest.test_case "http: malformed syntax" `Quick test_bad_requests;
    Alcotest.test_case "http: percent decoding" `Quick test_percent_decoding;
    Alcotest.test_case "http: keep-alive defaults" `Quick
      test_keep_alive_defaults;
    Alcotest.test_case "http: response serialization" `Quick
      test_response_serialization;
    Alcotest.test_case "admission: capacity bound" `Quick
      test_admission_capacity;
    Alcotest.test_case "admission: release underflow" `Quick
      test_admission_release_underflow;
    Alcotest.test_case "admission: error mapping" `Quick
      test_admission_error_mapping;
    Alcotest.test_case "admission: concurrent" `Quick test_admission_concurrent;
    Alcotest.test_case "server: failed create leaks no fd" `Quick
      test_create_failure_leaks_nothing;
  ]
