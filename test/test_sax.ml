(* Streaming SAX interface. *)

module Sax = Xks_xml.Sax

type event = Start of string * (string * string) list | Text of string | End of string

let events_of src =
  let acc = ref [] in
  let h =
    Sax.handler
      ~on_start:(fun name attrs -> acc := Start (name, attrs) :: !acc)
      ~on_text:(fun s -> acc := Text s :: !acc)
      ~on_end:(fun name -> acc := End name :: !acc)
      ()
  in
  Sax.parse_string h src;
  List.rev !acc

let test_event_order () =
  let events = events_of "<a x='1'>hi<b/>there</a>" in
  Alcotest.(check bool) "expected stream" true
    (events
    = [
        Start ("a", [ ("x", "1") ]); Text "hi"; Start ("b", []); End "b";
        Text "there"; End "a";
      ])

let test_text_segments_untrimmed () =
  let events = events_of "<a> padded </a>" in
  Alcotest.(check bool) "raw segment" true (events = [ Start ("a", []); Text " padded "; End "a" ])

let test_entities_and_cdata () =
  let events = events_of "<a>&amp;<![CDATA[<x>]]></a>" in
  Alcotest.(check bool) "decoded" true
    (events = [ Start ("a", []); Text "&<x>"; End "a" ])

let test_balanced_on_random_docs =
  QCheck2.Test.make ~name:"starts and ends balance on generated documents"
    ~count:200 ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let src = Xks_xml.Writer.to_string doc in
      let depth = ref 0 and max_depth = ref 0 and count = ref 0 in
      let h =
        Sax.handler
          ~on_start:(fun _ _ ->
            incr depth;
            incr count;
            if !depth > !max_depth then max_depth := !depth)
          ~on_end:(fun _ -> decr depth)
          ()
      in
      Sax.parse_string h src;
      !depth = 0 && !count = Xks_xml.Tree.size doc)

let test_streaming_word_count () =
  (* The canonical SAX use: count keyword occurrences without a tree. *)
  let doc = Xks_datagen.Paper_fixtures.publications () in
  let src = Xks_xml.Writer.to_string doc in
  let count = ref 0 in
  let feed s =
    Xks_xml.Tokenizer.iter_words
      (fun w -> if w = "keyword" then incr count)
      s
  in
  let h =
    Sax.handler
      ~on_start:(fun name attrs ->
        feed name;
        List.iter
          (fun (k, v) ->
            feed k;
            feed v)
          attrs)
      ~on_text:feed ()
  in
  Sax.parse_string h src;
  let idx = Xks_index.Inverted.build doc in
  Alcotest.(check int) "same count as the index"
    (Xks_index.Inverted.occurrence_count idx "keyword")
    !count

let test_errors_positioned () =
  let h = Sax.handler () in
  (match Sax.parse_string h "<a>\n<b></c></a>" with
  | exception Sax.Error { line; _ } -> Alcotest.(check int) "line" 2 line
  | () -> Alcotest.fail "expected an error");
  Alcotest.(check bool) "error rendering" true
    (Sax.error_to_string (Sax.Error { line = 1; col = 2; message = "x" }) <> None);
  Alcotest.(check bool) "other exceptions ignored" true
    (Sax.error_to_string Exit = None)

let tests =
  [
    Alcotest.test_case "event order" `Quick test_event_order;
    Alcotest.test_case "text segments are raw" `Quick test_text_segments_untrimmed;
    Alcotest.test_case "entities and CDATA" `Quick test_entities_and_cdata;
    Helpers.qtest test_balanced_on_random_docs;
    Alcotest.test_case "streaming word count" `Quick test_streaming_word_count;
    Alcotest.test_case "errors carry positions" `Quick test_errors_positioned;
  ]
