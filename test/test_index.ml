module Klist = Xks_index.Klist
module Cid = Xks_index.Cid
module Inverted = Xks_index.Inverted
module Shredder = Xks_index.Shredder
module Tree = Xks_xml.Tree

(* --- Klist --- *)

let test_klist_key_numbers () =
  (* Paper section 4.1: for a 5-keyword query, kList 01111 has key number
     15 and 00111 has key number 7. *)
  let k = 5 in
  let knum indices =
    List.fold_left
      (fun acc i -> Klist.union acc (Klist.singleton ~k i))
      Klist.empty indices
  in
  Alcotest.(check int) "01111 = 15" 15 (knum [ 1; 2; 3; 4 ]);
  Alcotest.(check int) "00111 = 7" 7 (knum [ 2; 3; 4 ]);
  Alcotest.(check int) "10000 = 16" 16 (knum [ 0 ]);
  Alcotest.(check string) "pp" "01111"
    (Format.asprintf "%a" (Klist.pp ~k) (knum [ 1; 2; 3; 4 ]))

let test_klist_subset () =
  Alcotest.(check bool) "7 subset of 15" true (Klist.subset 7 15);
  Alcotest.(check bool) "15 not subset of 7" false (Klist.subset 15 7);
  Alcotest.(check bool) "strict" false (Klist.strict_subset 7 7);
  Alcotest.(check bool) "full" true (Klist.is_full ~k:4 15)

let test_klist_covered_by_any () =
  Alcotest.(check bool) "7 covered in [7; 15]" true
    (Klist.covered_by_any 7 [| 7; 15 |]);
  Alcotest.(check bool) "15 not covered in [7; 15]" false
    (Klist.covered_by_any 15 [| 7; 15 |]);
  (* 5 = 0101, 6 = 0110: larger but not a superset. *)
  Alcotest.(check bool) "5 not covered by 6" false
    (Klist.covered_by_any 5 [| 5; 6 |]);
  Alcotest.(check bool) "equal is not covering" false
    (Klist.covered_by_any 7 [| 7 |])

let test_klist_misc () =
  Alcotest.(check int) "cardinal" 3 (Klist.cardinal 7);
  Alcotest.(check (list int)) "indices of 01010 (k=5)" [ 1; 3 ]
    (Klist.to_indices ~k:5 10);
  Alcotest.check_raises "bad index" (Invalid_argument "Klist: keyword index")
    (fun () -> ignore (Klist.singleton ~k:3 3))

let prop_covered_matches_definition =
  QCheck2.Test.make ~name:"covered_by_any = exists strict superset" ~count:500
    QCheck2.Gen.(pair (int_range 0 63) (list_size (int_range 0 8) (int_range 0 63)))
    (fun (v, vs) ->
      let arr = Array.of_list (List.sort_uniq compare vs) in
      Klist.covered_by_any v arr
      = Array.exists (fun u -> Klist.strict_subset v u) arr)

(* --- Cid --- *)

let test_cid_approx () =
  let c = Cid.of_words Approx [ "match"; "keyword"; "xml"; "search" ] in
  Alcotest.(check string) "minmax" "(keyword, xml)"
    (Format.asprintf "%a" Cid.pp c);
  let d = Cid.of_words Approx [ "abstract" ] in
  Alcotest.(check string) "merge extends" "(abstract, xml)"
    (Format.asprintf "%a" Cid.pp (Cid.merge c d));
  Alcotest.(check bool) "empty merge is identity" true
    (Cid.equal c (Cid.merge Cid.empty c))

let test_cid_exact () =
  let a = Cid.of_words Exact [ "b"; "a"; "b" ] in
  let b = Cid.of_words Exact [ "c"; "a" ] in
  Alcotest.(check string) "sorted dedup" "{a, b}" (Format.asprintf "%a" Cid.pp a);
  Alcotest.(check string) "merge unions" "{a, b, c}"
    (Format.asprintf "%a" Cid.pp (Cid.merge a b));
  Alcotest.check_raises "mode mixing"
    (Invalid_argument "Cid.merge: mixing approximate and exact features")
    (fun () -> ignore (Cid.merge a (Cid.of_words Approx [ "x" ])))

let test_cid_collision () =
  (* The approximation deliberately conflates sets with equal extremes. *)
  let a = Cid.of_words Approx [ "a"; "z"; "m" ] in
  let b = Cid.of_words Approx [ "a"; "z"; "q" ] in
  Alcotest.(check bool) "approx collides" true (Cid.equal a b);
  let a' = Cid.of_words Exact [ "a"; "z"; "m" ] in
  let b' = Cid.of_words Exact [ "a"; "z"; "q" ] in
  Alcotest.(check bool) "exact distinguishes" false (Cid.equal a' b')

let gen_words =
  QCheck2.Gen.(list_size (int_range 0 6) (oneofa Helpers.words))

let prop_cid_merge_laws =
  QCheck2.Test.make ~name:"cid merge: commutative, associative, idempotent"
    ~count:500
    QCheck2.Gen.(triple gen_words gen_words gen_words)
    (fun (a, b, c) ->
      List.for_all
        (fun mode ->
          let ca = Cid.of_words mode a
          and cb = Cid.of_words mode b
          and cc = Cid.of_words mode c in
          Cid.equal (Cid.merge ca cb) (Cid.merge cb ca)
          && Cid.equal
               (Cid.merge ca (Cid.merge cb cc))
               (Cid.merge (Cid.merge ca cb) cc)
          && Cid.equal (Cid.merge ca ca) ca)
        [ Cid.Approx; Cid.Exact ])

let prop_cid_of_union_is_merge =
  QCheck2.Test.make ~name:"cid of a union = merge of cids" ~count:500
    QCheck2.Gen.(pair gen_words gen_words)
    (fun (a, b) ->
      List.for_all
        (fun mode ->
          Cid.equal
            (Cid.of_words mode (a @ b))
            (Cid.merge (Cid.of_words mode a) (Cid.of_words mode b)))
        [ Cid.Approx; Cid.Exact ])

let prop_klist_union_laws =
  QCheck2.Test.make ~name:"klist union: lattice laws and subset" ~count:500
    QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
    (fun (a, b) ->
      let u = Klist.union a b in
      Klist.subset a u && Klist.subset b u
      && Klist.union a a = a
      && Klist.union a b = Klist.union b a
      && Klist.inter a u = a
      && (Klist.subset a b = (Klist.union a b = b)))

(* --- Inverted index --- *)

let sample_doc () =
  Tree.build
    (Tree.elem "lib"
       [
         Tree.elem ~text:"xml search" "book" [];
         Tree.elem ~text:"xml xml keyword" "book" [];
         Tree.elem ~attrs:[ ("topic", "search") ] "note" [];
       ])

let test_inverted_postings () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  Alcotest.(check (list int)) "xml posting" [ 1; 2 ]
    (Array.to_list (Inverted.posting idx "xml"));
  Alcotest.(check (list int)) "search includes attribute" [ 1; 3 ]
    (Array.to_list (Inverted.posting idx "search"));
  Alcotest.(check (list int)) "label word" [ 1; 2 ]
    (Array.to_list (Inverted.posting idx "book"));
  Alcotest.(check (list int)) "absent word" []
    (Array.to_list (Inverted.posting idx "nosuchword"));
  Alcotest.(check (list int)) "case-insensitive lookup" [ 1; 2 ]
    (Array.to_list (Inverted.posting idx "XML"))

let test_inverted_counts () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  Alcotest.(check int) "node count dedups" 2 (Inverted.node_count idx "xml");
  Alcotest.(check int) "occurrences count repeats" 3
    (Inverted.occurrence_count idx "xml");
  Alcotest.(check bool) "vocabulary sorted" true
    (let v = Inverted.vocabulary idx in
     List.sort String.compare v = v);
  match Inverted.top_words idx 1 with
  | [ (w, c) ] ->
      Alcotest.(check string) "top word" "xml" w;
      Alcotest.(check int) "top count" 3 c
  | other -> Alcotest.failf "expected 1 top word, got %d" (List.length other)

let prop_postings_sorted_and_complete =
  QCheck2.Test.make ~name:"postings are sorted and match node contents"
    ~count:150 ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let idx = Inverted.build doc in
      List.for_all
        (fun w ->
          let p = Inverted.posting idx w in
          let sorted = Array.to_list p = List.sort_uniq compare (Array.to_list p) in
          let expected =
            Tree.fold
              (fun acc n -> if Tree.node_matches doc n w then n.Tree.id :: acc else acc)
              [] doc
            |> List.rev
          in
          sorted && Array.to_list p = expected)
        (Array.to_list Helpers.words))

(* Read-only sharing audit: Xks_exec workers share one index across
   domains, which is sound only if lookups never mutate the structure.
   [posting] must return the same physical array on every call — a
   lazily materialised (memoised) table would hand back a fresh array
   the first time and break the guarantee silently. *)
let test_inverted_immutable_lookups () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  let before = Inverted.posting idx "xml" in
  (* Exercise every read path, including a search through the engine. *)
  ignore (Inverted.posting idx "nosuchword" : int array);
  ignore (Inverted.vocabulary idx : string list);
  ignore (Inverted.top_words idx 3 : (string * int) list);
  ignore
    (Xks_core.Engine.search
       (Xks_core.Engine.of_index idx)
       [ "xml"; "search" ]
    : Xks_core.Engine.hit list);
  Alcotest.(check bool) "same physical posting array" true
    (before == Inverted.posting idx "xml");
  (* Round-tripping through rows rebuilds an equal frozen table. *)
  let idx' = Inverted.of_rows doc (Inverted.to_rows idx) in
  Alcotest.(check (list int)) "row round-trip preserves postings"
    (Array.to_list before)
    (Array.to_list (Inverted.posting idx' "xml"))

(* --- Suggest --- *)

let test_levenshtein () =
  let d = Xks_index.Suggest.distance in
  Alcotest.(check int) "identity" 0 (d "xml" "xml");
  Alcotest.(check int) "substitution" 1 (d "xml" "xmk");
  Alcotest.(check int) "insertion" 1 (d "xml" "xmll");
  Alcotest.(check int) "deletion" 1 (d "xml" "xl");
  Alcotest.(check int) "kitten/sitting" 3 (d "kitten" "sitting");
  Alcotest.(check int) "cutoff caps the result" 2
    (d ~cutoff:1 "completely" "different")

let test_suggest () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  (match Xks_index.Suggest.suggest idx "xmk" with
  | ("xml", 1) :: _ -> ()
  | other ->
      Alcotest.failf "expected xml first, got %d suggestions"
        (List.length other));
  Alcotest.(check (list (pair string int))) "far word: nothing" []
    (Xks_index.Suggest.suggest idx "zzzzzzzz");
  Alcotest.(check bool) "never suggests the word itself" true
    (List.for_all (fun (v, _) -> v <> "xml")
       (Xks_index.Suggest.suggest idx "xml"))

let test_correct_query () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  match Xks_index.Suggest.correct_query idx [ "xml"; "serch"; "qqqqqq" ] with
  | [ ("xml", None); ("serch", Some "search"); ("qqqqqq", None) ] -> ()
  | l -> Alcotest.failf "unexpected corrections (%d entries)" (List.length l)

(* --- Shredder --- *)

let test_shredder_tables () =
  let doc = sample_doc () in
  let tables = Shredder.shred doc in
  let labels, elements, values = Shredder.row_count tables in
  Alcotest.(check int) "distinct labels" 3 labels;
  Alcotest.(check int) "one element row per node" (Tree.size doc) elements;
  Alcotest.(check bool) "values non-empty" true (values > 0);
  (* The value-table lookup answers like the inverted index. *)
  let deweys_of_rows rows =
    List.map (fun r -> Xks_xml.Dewey.to_string r.Shredder.v_dewey) rows
  in
  Alcotest.(check (list string)) "value lookup" [ "0.0"; "0.1" ]
    (deweys_of_rows (Shredder.find_values tables "xml"));
  (* Attribute words carry the attribute name. *)
  let attr_row =
    List.find
      (fun r -> r.Shredder.v_keyword = "search" && r.Shredder.v_attribute <> "")
      tables.Shredder.values
  in
  Alcotest.(check string) "attribute name" "topic" attr_row.Shredder.v_attribute

let test_shredder_label_paths () =
  let doc = sample_doc () in
  let tables = Shredder.shred doc in
  let row = tables.Shredder.elements.(Helpers.id_at doc "0.1") in
  Alcotest.(check int) "level" 1 row.Shredder.e_level;
  Alcotest.(check (list int)) "label path root..self" [ 0; 1 ]
    row.Shredder.e_label_path

let tests =
  [
    Alcotest.test_case "klist key numbers (fig 4)" `Quick test_klist_key_numbers;
    Alcotest.test_case "klist subset" `Quick test_klist_subset;
    Alcotest.test_case "klist covered_by_any" `Quick test_klist_covered_by_any;
    Alcotest.test_case "klist misc" `Quick test_klist_misc;
    Helpers.qtest prop_covered_matches_definition;
    Helpers.qtest prop_cid_merge_laws;
    Helpers.qtest prop_cid_of_union_is_merge;
    Helpers.qtest prop_klist_union_laws;
    Alcotest.test_case "cid approx (min,max)" `Quick test_cid_approx;
    Alcotest.test_case "cid exact" `Quick test_cid_exact;
    Alcotest.test_case "cid collision behaviour" `Quick test_cid_collision;
    Alcotest.test_case "inverted postings" `Quick test_inverted_postings;
    Alcotest.test_case "inverted counts" `Quick test_inverted_counts;
    Helpers.qtest prop_postings_sorted_and_complete;
    Alcotest.test_case "inverted lookups never mutate" `Quick
      test_inverted_immutable_lookups;
    Alcotest.test_case "levenshtein distance" `Quick test_levenshtein;
    Alcotest.test_case "suggestions" `Quick test_suggest;
    Alcotest.test_case "query correction" `Quick test_correct_query;
    Alcotest.test_case "shredder tables" `Quick test_shredder_tables;
    Alcotest.test_case "shredder label paths" `Quick test_shredder_label_paths;
  ]
