(* Binary index persistence: round-trips, format validation. *)

module Inverted = Xks_index.Inverted
module Persist = Xks_index.Persist

let with_temp f =
  let path = Filename.temp_file "xks_persist" ".idx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let sample_doc () = Xks_datagen.Paper_fixtures.publications ()

let test_roundtrip () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  with_temp (fun path ->
      Persist.save path idx;
      let idx' = Persist.load path doc in
      Alcotest.(check int) "vocabulary size" (Inverted.vocabulary_size idx)
        (Inverted.vocabulary_size idx');
      List.iter
        (fun w ->
          Alcotest.(check (list int))
            ("posting of " ^ w)
            (Array.to_list (Inverted.posting idx w))
            (Array.to_list (Inverted.posting idx' w));
          Alcotest.(check int)
            ("occurrences of " ^ w)
            (Inverted.occurrence_count idx w)
            (Inverted.occurrence_count idx' w))
        (Inverted.vocabulary idx))

let test_loaded_index_searches () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  with_temp (fun path ->
      Persist.save path idx;
      let idx' = Persist.load path doc in
      let run idx = Xks_core.Validrtf.run idx Xks_datagen.Paper_fixtures.q2 in
      let frags r = List.map Xks_core.Fragment.members_list r.Xks_core.Pipeline.fragments in
      Alcotest.(check (list (list int)))
        "same search results" (frags (run idx)) (frags (run idx')))

let test_rejects_garbage () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "not an index";
      close_out oc;
      match Persist.load path (sample_doc ()) with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "garbage accepted")

let test_rejects_wrong_document () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  with_temp (fun path ->
      Persist.save path idx;
      let tiny = Xks_xml.Parser.parse_string "<a/>" in
      match Persist.load path tiny with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "mismatched document accepted")

let test_dump_of_table_inverse () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  let rows = Persist.dump idx in
  let idx' = Persist.of_table doc rows in
  Alcotest.(check bool) "rows round-trip" true (Persist.dump idx' = rows)

let test_of_table_validation () =
  let doc = sample_doc () in
  let bad_order = [ ("w", 2, [| 3; 1 |]) ] in
  (match Persist.of_table doc bad_order with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unsorted posting accepted");
  let bad_range = [ ("w", 1, [| 10_000 |]) ] in
  match Persist.of_table doc bad_range with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "out-of-range id accepted"

(* --- XKSIDX2 integrity (checksums, framing, structured failure) --- *)

let sample_bytes () = Persist.encode (Persist.dump (Inverted.build (sample_doc ())))

let test_encode_decode_roundtrip () =
  let rows = Persist.dump (Inverted.build (sample_doc ())) in
  Alcotest.(check bool) "bytes round-trip" true (Persist.decode (Persist.encode rows) = rows)

let expect_failure name bytes =
  match Persist.decode bytes with
  | exception Failure _ -> ()
  | exception e ->
      Alcotest.failf "%s: escaped with %s, not Failure" name (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: accepted" name

let test_every_prefix_fails_cleanly () =
  (* A torn write can stop at any byte; each prefix must be rejected with
     Failure — never an Invalid_argument, Out_of_memory or array error. *)
  let bytes = sample_bytes () in
  for k = 0 to String.length bytes - 1 do
    expect_failure (Printf.sprintf "prefix of %d bytes" k) (String.sub bytes 0 k)
  done

let test_trailing_garbage_rejected () =
  let bytes = sample_bytes () in
  (match Persist.decode (bytes ^ "\x00") with
  | exception Failure msg ->
      Alcotest.(check bool) "names the garbage" true
        (Helpers.contains msg "trailing")
  | _ -> Alcotest.fail "trailing byte accepted")

let test_varint_overflow_rejected () =
  (* magic + (ignored) CRC + a varint whose continuation bits never end:
     must fail on the overflow, not loop or wrap negative. *)
  expect_failure "overflowing varint"
    ("XKSIDX2\n\x00\x00\x00\x00" ^ String.make 10 '\xff')

let test_bit_flip_names_the_word_block () =
  let bytes = sample_bytes () in
  (* flip a byte well inside the word sections, past magic + CRC + count *)
  let pos = String.length bytes / 2 in
  let b = Bytes.of_string bytes in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  match Persist.decode (Bytes.to_string b) with
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "localises the damage (got %S)" msg)
        true
        (Helpers.contains msg "word block" || Helpers.contains msg "byte")
  | _ -> Alcotest.fail "bit flip undetected"

let test_legacy_v1_still_readable () =
  (* A hand-assembled XKSIDX1 file: one word "w", 1 occurrence,
     posting [3] (all values < 0x80, so varints are single bytes). *)
  let v1 = "XKSIDX1\n\x01\x01w\x01\x01\x03" in
  Alcotest.(check bool) "v1 decodes" true
    (Persist.decode v1 = [ ("w", 1, [| 3 |]) ])

let test_load_or_rebuild_recovers () =
  let doc = sample_doc () in
  let idx = Inverted.build doc in
  with_temp (fun path ->
      Persist.save path idx;
      let good = In_channel.with_open_bin path In_channel.input_all in
      (* tear the file *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub good 0 (String.length good / 3)));
      let logged = ref [] in
      let idx' = Persist.load_or_rebuild ~log:(fun m -> logged := m :: !logged) path doc in
      Alcotest.(check bool) "warned" true
        (List.exists (fun m -> Helpers.contains m "rebuild") !logged);
      Alcotest.(check bool) "rebuilt index equals the original" true
        (Persist.dump idx' = Persist.dump idx);
      (* the repaired file is written back, byte-identical to a fresh save *)
      let repaired = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check bool) "re-saved byte-identical" true (repaired = good))

let test_load_failpoint_truncation () =
  let doc = sample_doc () in
  with_temp (fun path ->
      Persist.save path (Inverted.build doc);
      match
        Xks_robust.Failpoint.with_failpoint Persist.read_site
          (Xks_robust.Failpoint.Truncate 12) (fun () -> Persist.load path doc)
      with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "injected truncation accepted")

let prop_any_prefix_fails_cleanly =
  QCheck2.Test.make ~name:"every prefix of encode fails decode with Failure"
    ~count:60 ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let bytes = Persist.encode (Persist.dump (Inverted.build doc)) in
      let ok = ref true in
      for k = 0 to String.length bytes - 1 do
        (match Persist.decode (String.sub bytes 0 k) with
        | exception Failure _ -> ()
        | exception _ -> ok := false
        | _ -> ok := false)
      done;
      !ok)

let prop_roundtrip_random =
  QCheck2.Test.make ~name:"persistence round-trip on random documents"
    ~count:100 ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let idx = Inverted.build doc in
      let idx' = Persist.of_table doc (Persist.dump idx) in
      Persist.dump idx = Persist.dump idx')

let tests =
  [
    Alcotest.test_case "round-trip through a file" `Quick test_roundtrip;
    Alcotest.test_case "loaded index searches identically" `Quick
      test_loaded_index_searches;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
    Alcotest.test_case "rejects a mismatched document" `Quick
      test_rejects_wrong_document;
    Alcotest.test_case "dump/of_table inverse" `Quick test_dump_of_table_inverse;
    Alcotest.test_case "of_table validation" `Quick test_of_table_validation;
    Alcotest.test_case "encode/decode round-trip" `Quick test_encode_decode_roundtrip;
    Alcotest.test_case "every prefix fails cleanly" `Quick
      test_every_prefix_fails_cleanly;
    Alcotest.test_case "trailing garbage rejected" `Quick
      test_trailing_garbage_rejected;
    Alcotest.test_case "varint overflow rejected" `Quick
      test_varint_overflow_rejected;
    Alcotest.test_case "bit flip names the word block" `Quick
      test_bit_flip_names_the_word_block;
    Alcotest.test_case "legacy XKSIDX1 still readable" `Quick
      test_legacy_v1_still_readable;
    Alcotest.test_case "load_or_rebuild recovers" `Quick
      test_load_or_rebuild_recovers;
    Alcotest.test_case "load under injected truncation" `Quick
      test_load_failpoint_truncation;
    Helpers.qtest prop_roundtrip_random;
    Helpers.qtest prop_any_prefix_fails_cleanly;
  ]
