(* Positional index and phrase queries. *)

module Positional = Xks_index.Positional
module Phrase = Xks_core.Phrase
module Engine = Xks_core.Engine

let doc () =
  Xks_xml.Parser.parse_string
    "<lib><b1><t>xml keyword search</t></b1><b2><t>keyword search in xml \
     data</t></b2><b3><t>search keyword xml</t></b3></lib>"

let test_positions () =
  let d = doc () in
  let p = Positional.build d in
  (* Node 0.0.0 content stream: "t" (label, offset 0) then the text. *)
  match Positional.positions p "keyword" with
  | (id, offsets) :: _ ->
      Alcotest.(check int) "first node" (Helpers.id_at d "0.0.0") id;
      Alcotest.(check (list int)) "offset after the label" [ 2 ]
        (Array.to_list offsets)
  | [] -> Alcotest.fail "expected positions"

let test_posting_agrees_with_inverted () =
  let d = doc () in
  let p = Positional.build d in
  let idx = Xks_index.Inverted.build d in
  List.iter
    (fun w ->
      Alcotest.(check (list int)) w
        (Array.to_list (Xks_index.Inverted.posting idx w))
        (Array.to_list (Positional.posting p w)))
    [ "xml"; "keyword"; "search"; "data"; "zzz" ]

let test_phrase_matching () =
  let d = doc () in
  let p = Positional.build d in
  Helpers.check_ids d "exact phrase order" [ "0.0.0" ]
    (Array.to_list (Positional.phrase_posting p [ "xml"; "keyword"; "search" ]));
  Helpers.check_ids d "two-word phrase"
    [ "0.0.0"; "0.1.0" ]
    (Array.to_list (Positional.phrase_posting p [ "keyword"; "search" ]));
  Alcotest.(check (list int)) "absent phrase" []
    (Array.to_list (Positional.phrase_posting p [ "data"; "keyword" ]))

let test_stopword_gap_blocks_phrase () =
  (* "search in xml": the dropped stop word occupies an offset, so
     "search xml" is not consecutive there. *)
  let d = doc () in
  let p = Positional.build d in
  Alcotest.(check (list int)) "gap not bridged" []
    (Array.to_list (Positional.phrase_posting p [ "search"; "xml" ]))

let test_parse_term () =
  (match Phrase.parse_term "\"XML Keyword\"" with
  | Phrase.Phrase [ "xml"; "keyword" ] -> ()
  | Phrase.Phrase _ | Phrase.Word _ -> Alcotest.fail "expected a phrase");
  (match Phrase.parse_term "\"xml\"" with
  | Phrase.Word "xml" -> ()
  | Phrase.Word _ | Phrase.Phrase _ ->
      Alcotest.fail "single-word phrase collapses");
  (match Phrase.parse_term "plain" with
  | Phrase.Word "plain" -> ()
  | Phrase.Word _ | Phrase.Phrase _ -> Alcotest.fail "bare word");
  Alcotest.(check string) "to_string" "\"xml keyword\""
    (Phrase.term_to_string (Phrase.Phrase [ "xml"; "keyword" ]))

let test_phrase_search_end_to_end () =
  let d = doc () in
  let engine = Engine.of_doc d in
  let p = Positional.build d in
  let hits = Phrase.search engine p [ "\"xml keyword\""; "search" ] in
  Alcotest.(check (list string)) "only the consecutive occurrence"
    [ "0.0.0" ]
    (List.map
       (fun (h : Engine.hit) ->
         Helpers.dewey_str d h.Engine.fragment.Xks_core.Fragment.root)
       hits);
  (* The same words as bare keywords match all three books. *)
  let bare = Engine.search engine [ "xml"; "keyword"; "search" ] in
  Alcotest.(check int) "bare query is broader" 3 (List.length bare)

let prop_phrase_subset_of_intersection =
  QCheck2.Test.make
    ~name:"phrase postings are contained in every word's posting"
    ~count:200 ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let p = Positional.build doc in
      List.for_all
        (fun (a, b) ->
          let phrase = Positional.phrase_posting p [ a; b ] in
          Array.for_all
            (fun id ->
              Xks_util.Bsearch.mem (Positional.posting p a) id
              && Xks_util.Bsearch.mem (Positional.posting p b) id)
            phrase)
        [ ("w0", "w1"); ("w1", "w2"); ("w2", "w2") ])

let prop_positional_posting_equals_inverted =
  QCheck2.Test.make ~name:"positional ids = inverted ids on random docs"
    ~count:200 ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      let p = Positional.build doc in
      let idx = Xks_index.Inverted.build doc in
      Array.for_all
        (fun w -> Positional.posting p w = Xks_index.Inverted.posting idx w)
        Helpers.words)

let tests =
  [
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "posting = inverted posting" `Quick
      test_posting_agrees_with_inverted;
    Alcotest.test_case "phrase matching" `Quick test_phrase_matching;
    Alcotest.test_case "stop word gaps block phrases" `Quick
      test_stopword_gap_blocks_phrase;
    Alcotest.test_case "term parsing" `Quick test_parse_term;
    Alcotest.test_case "phrase search end to end" `Quick
      test_phrase_search_end_to_end;
    Helpers.qtest prop_phrase_subset_of_intersection;
    Helpers.qtest prop_positional_posting_equals_inverted;
  ]
