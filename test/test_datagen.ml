(* Generators: determinism, planted keyword frequencies, workload sanity. *)

module Rng = Xks_datagen.Rng
module Vocab = Xks_datagen.Vocab
module Dblp = Xks_datagen.Dblp_gen
module Xmark = Xks_datagen.Xmark_gen
module Queries = Xks_datagen.Queries
module Workload_gen = Xks_datagen.Workload_gen
module Inverted = Xks_index.Inverted
module Tree = Xks_xml.Tree

let test_rng_deterministic () =
  let a = Rng.create 99 and b = Rng.create 99 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create 100 in
  let zs = List.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    if x < 0 || x >= 7 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound")
    (fun () -> ignore (Rng.int r 0))

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let a = Array.init 30 Fun.id in
  Rng.shuffle r a;
  Alcotest.(check (list int)) "same multiset"
    (List.init 30 Fun.id)
    (List.sort compare (Array.to_list a))

let test_zipf_skew () =
  let r = Rng.create 11 in
  let counts = Array.make 20 0 in
  for _ = 1 to 2000 do
    let x = Rng.zipf r ~n:20 ~s:1.0 in
    counts.(x) <- counts.(x) + 1
  done;
  Alcotest.(check bool) "rank 0 beats rank 10" true (counts.(0) > counts.(10))

let test_vocab_sampler () =
  let smp = Vocab.sampler ~s:1.2 Vocab.common in
  let r = Rng.create 3 in
  for _ = 1 to 500 do
    let w = Vocab.sample smp r in
    if not (Array.exists (String.equal w) Vocab.common) then
      Alcotest.failf "sampled %s outside the vocabulary" w
  done;
  let s = Vocab.sentence smp r ~min_words:3 ~max_words:5 in
  let n = List.length (String.split_on_char ' ' s) in
  Alcotest.(check bool) "sentence length" true (n >= 3 && n <= 5)

let test_dblp_deterministic () =
  let cfg = { Dblp.default_config with entries = 200 } in
  let a = Dblp.generate ~config:cfg () and b = Dblp.generate ~config:cfg () in
  Alcotest.(check string) "equal documents"
    (Xks_xml.Writer.to_string a) (Xks_xml.Writer.to_string b)

let test_dblp_planted_frequencies () =
  let cfg = { Dblp.default_config with entries = 500; scale = 0.005 } in
  let doc = Dblp.generate ~config:cfg () in
  let idx = Inverted.build doc in
  List.iter
    (fun (w, expected) ->
      Alcotest.(check int) (Printf.sprintf "occurrences of %s" w) expected
        (Inverted.occurrence_count idx w))
    (Dblp.planted_counts cfg)

let test_dblp_shape () =
  let cfg = { Dblp.default_config with entries = 100 } in
  let doc = Dblp.generate ~config:cfg () in
  let root = Tree.root doc in
  Alcotest.(check string) "root label" "dblp" (Tree.label_name doc root);
  Alcotest.(check int) "one child per entry" 100 (Array.length root.Tree.children)

let test_xmark_deterministic_and_scaled () =
  let cfg = { Xmark.default_config with items = 4 } in
  let std = Xmark.generate ~config:cfg Xmark.Standard in
  let std' = Xmark.generate ~config:cfg Xmark.Standard in
  Alcotest.(check string) "deterministic"
    (Xks_xml.Writer.to_string std) (Xks_xml.Writer.to_string std');
  let d2 = Xmark.generate ~config:cfg Xmark.Data2 in
  Alcotest.(check bool) "data2 is much bigger" true
    (Tree.size d2 > 4 * Tree.size std)

let test_xmark_planted_frequencies () =
  let cfg = { Xmark.default_config with items = 6; keyword_scale = 0.002 } in
  let doc = Xmark.generate ~config:cfg Xmark.Standard in
  let idx = Inverted.build doc in
  List.iter
    (fun (w, expected) ->
      Alcotest.(check int) (Printf.sprintf "occurrences of %s" w) expected
        (Inverted.occurrence_count idx w))
    (Xmark.planted_counts cfg Xmark.Standard)

let test_xmark_frequency_growth () =
  (* The 1:3:6 dataset ratio carries over to keyword counts. *)
  let cfg = Xmark.default_config in
  let count size w =
    List.assoc w (Xmark.planted_counts cfg size)
  in
  List.iter
    (fun (w, _, _, _) ->
      let s = count Xmark.Standard w
      and d1 = count Xmark.Data1 w
      and d2 = count Xmark.Data2 w in
      Alcotest.(check bool) (w ^ " grows") true (s <= d1 && d1 <= d2))
    Xmark.keywords

let test_queries_workloads () =
  Alcotest.(check int) "19 dblp queries" 19 (List.length Queries.dblp.Queries.queries);
  Alcotest.(check int) "25 xmark queries" 25 (List.length Queries.xmark.Queries.queries);
  (* Every mnemonic expands to known keywords. *)
  let check_workload abbrs (wl : Queries.workload) keywords =
    List.iter
      (fun (mnemonic, ws) ->
        Alcotest.(check int)
          (mnemonic ^ " arity")
          (String.length mnemonic) (List.length ws);
        List.iter
          (fun w ->
            if not (List.mem w keywords) then
              Alcotest.failf "query %s uses unknown keyword %s" mnemonic w)
          ws;
        Alcotest.(check (list string))
          (mnemonic ^ " expands consistently")
          ws
          (Queries.expand abbrs mnemonic))
      wl.Queries.queries
  in
  check_workload Queries.dblp_abbreviations Queries.dblp
    (List.map fst Dblp.keywords);
  check_workload Queries.xmark_abbreviations Queries.xmark
    (List.map (fun (w, _, _, _) -> w) Xmark.keywords)

let test_workload_gen () =
  let doc = Dblp.generate ~config:{ Dblp.default_config with entries = 300 } () in
  let idx = Inverted.build doc in
  let queries = Xks_datagen.Workload_gen.generate ~seed:5 ~count:20 idx in
  Alcotest.(check int) "count" 20 (List.length queries);
  List.iter
    (fun q ->
      let n = List.length q in
      if n < 2 || n > 6 then Alcotest.failf "bad arity %d" n;
      if List.length (List.sort_uniq compare q) <> n then
        Alcotest.fail "duplicate keyword in a query";
      List.iter
        (fun w ->
          if Inverted.occurrence_count idx w < 2 then
            Alcotest.failf "workload keyword %s below the frequency floor" w)
        q)
    queries;
  (* Deterministic. *)
  Alcotest.(check bool) "same seed, same workload" true
    (queries = Xks_datagen.Workload_gen.generate ~seed:5 ~count:20 idx);
  Alcotest.(check bool) "different seed differs" true
    (queries <> Xks_datagen.Workload_gen.generate ~seed:6 ~count:20 idx)

let test_workload_bands () =
  let doc = Dblp.generate ~config:{ Dblp.default_config with entries = 300 } () in
  let idx = Inverted.build doc in
  let bands = Xks_datagen.Workload_gen.bands idx in
  Alcotest.(check int) "three bands" 3 (List.length bands);
  (* Bands are ordered by frequency. *)
  let max_count ws =
    List.fold_left (fun m w -> max m (Inverted.occurrence_count idx w)) 0 ws
  in
  let min_count ws =
    List.fold_left (fun m w -> min m (Inverted.occurrence_count idx w)) max_int ws
  in
  match bands with
  | [ (b_r, r); (b_m, m); (b_f, f) ] ->
      Alcotest.(check bool) "band order" true
        (b_r = Workload_gen.Rare && b_m = Workload_gen.Medium
        && b_f = Workload_gen.Frequent);
      Alcotest.(check bool) "rare <= medium" true (max_count r <= min_count m || m = []);
      Alcotest.(check bool) "medium <= frequent" true (max_count m <= min_count f || f = [])
  | [] | _ :: _ -> Alcotest.fail "unexpected band structure"

let test_expand_unknown () =
  Alcotest.check_raises "unknown letter"
    (Invalid_argument "Queries.expand: unknown abbreviation 'z'") (fun () ->
      ignore (Queries.expand Queries.xmark_abbreviations "z"))

let tests =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "vocab sampler" `Quick test_vocab_sampler;
    Alcotest.test_case "dblp determinism" `Quick test_dblp_deterministic;
    Alcotest.test_case "dblp planted frequencies are exact" `Quick
      test_dblp_planted_frequencies;
    Alcotest.test_case "dblp shape" `Quick test_dblp_shape;
    Alcotest.test_case "xmark determinism and scaling" `Quick
      test_xmark_deterministic_and_scaled;
    Alcotest.test_case "xmark planted frequencies are exact" `Quick
      test_xmark_planted_frequencies;
    Alcotest.test_case "xmark frequency growth" `Quick test_xmark_frequency_growth;
    Alcotest.test_case "query workloads" `Quick test_queries_workloads;
    Alcotest.test_case "workload generator" `Quick test_workload_gen;
    Alcotest.test_case "workload bands" `Quick test_workload_bands;
    Alcotest.test_case "expand rejects unknown letters" `Quick test_expand_unknown;
  ]
