(* Serving-layer fault suite, outside the default runtest (see the
   @stress alias): drives the real `xks serve` binary through a
   SIGTERM-under-load drill, then an in-process server through the
   failure modes a load balancer will eventually deliver — malformed
   request lines, injected read faults (error / torn / corrupt), slow
   trickling clients, mid-request disconnects, pool exhaustion, and a
   drain deadline that has to cut a wedged connection.  The invariant
   throughout is the serving contract: every connection ends in a
   well-formed response or a clean close, failures cost one connection
   and never the server, and shutdown always terminates with every
   slot released.

     dune exec test/stress/serve_fault.exe -- path/to/xks.exe

   Exits non-zero on the first violation. *)

module L = Xks_bench.Loadgen
module Server = Xks_serve.Server
module Failpoint = Xks_robust.Failpoint
module Engine = Xks_core.Engine

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      Printf.eprintf "SERVE FAULT FAILURE: %s\n%!" m)
    fmt

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "xks-serve-fault-%d-%d.sock" (Unix.getpid ())
       !sock_counter)

(* Wait for a child with a deadline; a hung process is itself a test
   failure, not a reason to hang the suite. *)
let wait_exit ~what ~deadline_s pid =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          fail "%s: still running after %.1fs, killed" what deadline_s;
          None
        end
        else begin
          Unix.sleepf 0.02;
          go ()
        end
    | _, status -> Some status
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Part 1: the real binary under SIGTERM while clients are hammering.
   This forks, so it MUST run before any domain is spawned in this
   process.                                                            *)
(* ------------------------------------------------------------------ *)

let run_tool ~what argv =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process argv.(0) argv Unix.stdin null Unix.stderr
  in
  Unix.close null;
  match wait_exit ~what ~deadline_s:30.0 pid with
  | Some (Unix.WEXITED 0) -> true
  | Some (Unix.WEXITED c) ->
      fail "%s: exit code %d" what c;
      false
  | Some (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
      fail "%s: killed/stopped by signal %d" what s;
      false
  | None -> false

let poll_connect ~deadline_s socket =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    match L.connect socket with
    | fd -> Some fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
        if Unix.gettimeofday () > deadline then None
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

(* A hammering client process: keep-alive requests in a loop until the
   server winds the connection down.  Exit codes: 0 = every request got
   a full well-formed response and the close was clean; 1 = never got a
   response; 2 = unexpected status; 3 = connection died mid-response. *)
let client_loop socket =
  let fd =
    match poll_connect ~deadline_s:5.0 socket with
    | Some fd -> fd
    | None -> Unix._exit 1
  in
  let got = ref 0 in
  let rec go () =
    (try L.send_request fd "/search?q=keyword+xml" with L.Client_error _ -> ());
    match L.read_reply fd with
    | Some r when r.L.status = 200 || r.L.status = 503 ->
        incr got;
        if L.reply_header r "connection" = Some "close" then Unix._exit 0
        else go ()
    | Some _ -> Unix._exit 2
    | None -> Unix._exit (if !got > 0 then 0 else 1)
    | exception L.Client_error _ -> Unix._exit 3
  in
  go ()

let sigterm_under_load xks =
  let corpus = Filename.temp_file "xks_serve_fault" ".xml" in
  let socket = fresh_socket () in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove corpus with Sys_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      if
        run_tool ~what:"gen corpus"
          [| xks; "gen"; "dblp"; "-o"; corpus; "--size"; "200"; "--seed"; "7" |]
      then begin
        let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        let server_pid =
          Unix.create_process xks
            [| xks; "serve"; "--socket"; socket; "--workers"; "2"; corpus |]
            Unix.stdin Unix.stdout null
        in
        Unix.close null;
        (match poll_connect ~deadline_s:10.0 socket with
        | Some fd -> L.close_quietly fd
        | None -> fail "server socket never became connectable");
        let clients =
          List.init 4 (fun _ ->
              match Unix.fork () with
              | 0 -> client_loop socket
              | pid -> pid)
        in
        Unix.sleepf 0.3;
        Unix.kill server_pid Sys.sigterm;
        (match wait_exit ~what:"server" ~deadline_s:15.0 server_pid with
        | Some (Unix.WEXITED 0) -> ()
        | Some (Unix.WEXITED c) -> fail "server: SIGTERM exit code %d" c
        | Some (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
            fail "server: died on signal %d" s
        | None -> ());
        if Sys.file_exists socket then
          fail "server left its socket file behind";
        List.iteri
          (fun i pid ->
            match wait_exit ~what:(Printf.sprintf "client %d" i) ~deadline_s:15.0 pid with
            | Some (Unix.WEXITED 0) -> ()
            | Some (Unix.WEXITED c) ->
                fail "client %d: unclean shutdown (exit %d)" i c
            | Some (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
                fail "client %d: signal %d" i s
            | None -> ())
          clients
      end)

(* ------------------------------------------------------------------ *)
(* Part 2: in-process failure modes (spawns domains; after part 1)     *)
(* ------------------------------------------------------------------ *)

let engine =
  lazy
    (Engine.of_doc
       (Xks_datagen.Dblp_gen.generate
          ~config:
            { Xks_datagen.Dblp_gen.default_config with entries = 120 }
          ()))

let base_config socket =
  {
    (Server.default_config ~socket_path:socket ()) with
    Server.workers = 2;
    queue = 2;
    cache_mb = 0;
  }

let with_server cfg f =
  let srv = Server.create cfg (Lazy.force engine) in
  let d = Domain.spawn (fun () -> Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.request_shutdown srv;
      Domain.join d)
    (fun () -> f srv)

let with_conn socket f =
  let fd = L.connect socket in
  Fun.protect ~finally:(fun () -> L.close_quietly fd) (fun () -> f fd)

(* One fresh-connection request, returning the reply (or None). *)
let one_shot socket target =
  with_conn socket (fun fd ->
      (try L.send_request ~close:true fd target with L.Client_error _ -> ());
      L.read_reply fd)

let expect_status name socket target want =
  match one_shot socket target with
  | Some r when r.L.status = want -> ()
  | Some r -> fail "%s: status %d, wanted %d" name r.L.status want
  | None -> fail "%s: connection closed before response" name
  | exception L.Client_error m -> fail "%s: client error: %s" name m

(* Malformed request lines: a garbage line costs 400 on that connection
   only; the very next connection is served normally. *)
let malformed_request_lines socket =
  List.iter
    (fun (label, raw) ->
      (match
         with_conn socket (fun fd ->
             (try L.write_all fd raw with L.Client_error _ -> ());
             L.read_reply fd)
       with
      | Some r when r.L.status = 400 -> ()
      | Some r -> fail "malformed %s: status %d, wanted 400" label r.L.status
      | None -> fail "malformed %s: closed without a 400" label
      | exception L.Client_error m -> fail "malformed %s: %s" label m);
      expect_status (Printf.sprintf "health after malformed %s" label) socket
        "/health" 200)
    [
      ("garbage", "NOT_HTTP GARBAGE\r\n\r\n");
      ("no protocol", "GET /health\r\n\r\n");
      ("bad version", "GET /health HTTP/2.0\r\n\r\n");
      ("colonless header", "GET /health HTTP/1.1\r\nbroken header\r\n\r\n");
    ]

(* Injected read faults at the server's socket-read site: an I/O error
   or torn/corrupt read costs that connection a clean failure (error
   response or close), and the server keeps serving afterwards. *)
let injected_read_faults socket =
  (* mid-read I/O error: the connection just dies; no crash, no hang *)
  Failpoint.with_failpoint Server.read_site
    (Failpoint.Raise (Sys_error "injected: network gone"))
    (fun () ->
      match one_shot socket "/health" with
      | Some r when r.L.status = 200 ->
          fail "read fault: request served despite injected I/O error"
      | Some _ | None -> ()
      | exception L.Client_error _ -> ());
  expect_status "health after injected I/O error" socket "/health" 200;
  (* corrupt read: offset 17 lands in the "HTTP/1.1" token of the
     single-chunk request below, so the parser must answer 400 *)
  Failpoint.with_failpoint Server.read_site (Failpoint.Corrupt 17) (fun () ->
      match
        with_conn socket (fun fd ->
            (try L.write_all fd "GET /health HTTP/1.1\r\n\r\n"
             with L.Client_error _ -> ());
            L.read_reply fd)
      with
      | Some r when r.L.status = 400 -> ()
      | Some r -> fail "corrupt read: status %d, wanted 400" r.L.status
      | None -> fail "corrupt read: closed without a 400"
      | exception L.Client_error m -> fail "corrupt read: %s" m);
  expect_status "health after corrupt read" socket "/health" 200

(* A client trickling a request slower than the read budget gets 408;
   a torn (truncated) read looks the same server-side — the request
   never completes inside the budget. *)
let slow_and_torn_clients socket =
  (match
     with_conn socket (fun fd ->
         (try L.write_all fd "GET /health HTTP/1.1\r\n"
          with L.Client_error _ -> ());
         (* stay silent past read_timeout_ms = 200 *)
         Unix.sleepf 0.45;
         L.read_reply fd)
   with
  | Some r when r.L.status = 408 -> ()
  | Some r -> fail "slow client: status %d, wanted 408" r.L.status
  | None -> fail "slow client: closed without a 408"
  | exception L.Client_error m -> fail "slow client: %s" m);
  (match
     Failpoint.with_failpoint Server.read_site (Failpoint.Truncate 8)
       (fun () ->
         with_conn socket (fun fd ->
             (try L.write_all fd "GET /health HTTP/1.1\r\n\r\n"
              with L.Client_error _ -> ());
             L.read_reply fd))
   with
  | Some r when r.L.status = 408 -> ()
  | Some r -> fail "torn read: status %d, wanted 408" r.L.status
  | None -> fail "torn read: closed without a 408"
  | exception L.Client_error m -> fail "torn read: %s" m);
  expect_status "health after slow/torn clients" socket "/health" 200

(* A client vanishing mid-request releases its slot and leaves the
   server healthy. *)
let mid_request_disconnect socket srv =
  let seen s = s.Server.accepted + s.Server.rejected in
  let before = seen (Server.stats srv) in
  for _ = 1 to 4 do
    with_conn socket (fun fd ->
        try L.write_all fd "GET /health HT" with L.Client_error _ -> ())
  done;
  (* connect returns before the server's accept tick runs, so wait
     until all four connections were actually seen (accepted, or shed
     if a slot from an earlier case was still in flight) AND every slot
     came back (the server has to notice each EOF) before probing *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec settle () =
    let s = Server.stats srv in
    if
      (seen s < before + 4 || s.Server.active > 0)
      && Unix.gettimeofday () < deadline
    then begin
      Unix.sleepf 0.05;
      settle ()
    end
    else s
  in
  let s = settle () in
  if seen s < before + 4 then
    fail "disconnects never reached the server (seen=%d, wanted >= %d)"
      (seen s) (before + 4);
  if s.Server.active > 0 then
    fail "disconnects leaked admission slots (active=%d)" s.Server.active;
  expect_status "health after disconnects" socket "/health" 200

(* workers=1, queue=0: one idle keep-alive connection owns the only
   slot, so the next connection must be shed with a well-formed 503 —
   deterministically, not probabilistically. *)
let pool_exhaustion () =
  let socket = fresh_socket () in
  let cfg = { (base_config socket) with Server.workers = 1; queue = 0 } in
  with_server cfg (fun srv ->
      with_conn socket (fun holder ->
          (* make sure the slot is really held, not still in accept *)
          (try L.send_request holder "/health" with L.Client_error _ -> ());
          (match L.read_reply holder with
          | Some r when r.L.status = 200 -> ()
          | Some r -> fail "exhaustion: holder got %d" r.L.status
          | None -> fail "exhaustion: holder connection closed"
          | exception L.Client_error m -> fail "exhaustion holder: %s" m);
          match one_shot socket "/health" with
          | Some r when r.L.status = 503 ->
              if not (L.well_formed_rejection r) then
                fail "exhaustion: 503 missing Retry-After or JSON error"
          | Some r -> fail "exhaustion: status %d, wanted 503" r.L.status
          | None -> fail "exhaustion: closed without a 503"
          | exception L.Client_error m -> fail "exhaustion: %s" m);
      (* slot release happens when the server notices the holder's EOF,
         which races our next connect: poll briefly instead of failing
         on the first 503 *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      let rec recovered () =
        let outcome =
          match one_shot socket "/health" with
          | Some r when r.L.status = 200 -> Ok ()
          | Some r ->
              Error (Printf.sprintf "status %d, wanted 200" r.L.status)
          | None -> Error "connection closed"
          | exception L.Client_error m -> Error m
        in
        match outcome with
        | Ok () -> ()
        | Error _ when Unix.gettimeofday () < deadline ->
            Unix.sleepf 0.05;
            recovered ()
        | Error m -> fail "health after exhaustion: %s" m
      in
      recovered ();
      if (Server.stats srv).Server.rejected < 1 then
        fail "exhaustion: rejection not counted in stats")

(* A connection wedged mid-request cannot outlive the drain deadline:
   shutdown cuts it, counts it as aborted, and still exits cleanly. *)
let drain_cuts_wedged_conn () =
  let socket = fresh_socket () in
  let cfg =
    {
      (base_config socket) with
      Server.read_timeout_ms = 10_000;
      drain_timeout_ms = 200;
    }
  in
  let aborted =
    with_server cfg (fun srv ->
        expect_status "pre-shutdown health" socket "/health" 200;
        let accepted_before = (Server.stats srv).Server.accepted in
        let fd = L.connect socket in
        (try L.write_all fd "GET /wedged HT" with L.Client_error _ -> ());
        (* the wedge only exists once the server has accepted the
           connection; shutting down before that just closes the
           listener on a backlog entry with nothing to abort *)
        let deadline = Unix.gettimeofday () +. 5.0 in
        let rec wait_accepted () =
          if
            (Server.stats srv).Server.accepted <= accepted_before
            && Unix.gettimeofday () < deadline
          then begin
            Unix.sleepf 0.02;
            wait_accepted ()
          end
        in
        wait_accepted ();
        if (Server.stats srv).Server.accepted <= accepted_before then
          fail "drain: wedged connection never accepted";
        Server.request_shutdown srv;
        (* with_server joins run; the wedged fd dies with the server *)
        Fun.protect
          ~finally:(fun () -> L.close_quietly fd)
          (fun () ->
            match L.read_reply fd with
            | None | Some _ -> ()
            | exception L.Client_error _ -> ());
        srv)
  in
  let s = Server.stats aborted in
  if s.Server.aborted < 1 then
    fail "drain: wedged connection not counted as aborted (%s)"
      (Server.stats_line s);
  if s.Server.active <> 0 then
    fail "drain: %d connections still active after run returned"
      s.Server.active;
  if Sys.file_exists socket then fail "drain: socket file left behind"

let in_process_faults () =
  let socket = fresh_socket () in
  let cfg = { (base_config socket) with Server.read_timeout_ms = 200 } in
  with_server cfg (fun srv ->
      malformed_request_lines socket;
      injected_read_faults socket;
      slow_and_torn_clients socket;
      mid_request_disconnect socket srv);
  if Sys.file_exists socket then fail "socket file left behind";
  pool_exhaustion ();
  drain_cuts_wedged_conn ()

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: serve_fault.exe path/to/xks.exe";
    exit 2
  end;
  let xks = Sys.argv.(1) in
  sigterm_under_load xks;
  Printf.printf "serve_fault: SIGTERM under load ok\n%!";
  in_process_faults ();
  Failpoint.clear_all ();
  if !failures > 0 then begin
    Printf.eprintf "serve_fault: %d failures\n" !failures;
    exit 1
  end;
  Printf.printf "serve_fault: all serving faults handled\n%!"
