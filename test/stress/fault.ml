(* Fault-injection stress suite, independent of `dune runtest` (see the
   @stress alias): torn writes, bit flips and mid-read I/O errors against
   the persistence layer; parser bombs and random byte mutation against
   ingestion; tiny-budget query storms against the engine.  The invariant
   throughout is that only the structured errors escape — Failure with a
   position, Limits.Limit_exceeded, Sax/Parser.Error, Sys_error — and
   that the recovery paths (load_or_rebuild, the degradation ladder)
   still produce a correct answer.

     dune exec test/stress/fault.exe -- [iterations] [seed]

   Exits non-zero on the first unstructured escape or wrong recovery. *)

module Tree = Xks_xml.Tree
module Rng = Xks_datagen.Rng
module Persist = Xks_index.Persist
module Inverted = Xks_index.Inverted
module Failpoint = Xks_robust.Failpoint
module Limits = Xks_robust.Limits
module Budget = Xks_robust.Budget
module Engine = Xks_core.Engine

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      Printf.eprintf "FAULT FAILURE: %s\n%!" m)
    fmt

(* An exception is "structured" when it is one of the documented error
   channels; anything else (Invalid_argument, Out_of_memory, stack
   overflow, array bounds) is a robustness bug. *)
let structured = function
  | Failure _ | Sys_error _ -> true
  | Limits.Limit_exceeded _ -> true
  | Xks_xml.Sax.Error _ | Xks_xml.Parser.Error _ -> true
  | Budget.Exhausted _ -> true
  | _ -> false

let expect_structured name f =
  match f () with
  | _ -> () (* surviving unharmed is acceptable (e.g. flip in slack space) *)
  | exception e ->
      if not (structured e) then
        fail "%s: unstructured escape: %s" name (Printexc.to_string e)

let with_temp data f =
  let path = Filename.temp_file "xks_fault" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      f path)

let labels = [| "a"; "b"; "c"; "d" |]
let words = [| "w0"; "w1"; "w2"; "w3"; "w4" |]

let random_doc rng max_nodes =
  let budget = ref (2 + Rng.int rng (max_nodes - 1)) in
  let rec build depth =
    decr budget;
    let n_children =
      if depth > 6 || !budget <= 0 then 0
      else Rng.int rng (min 4 (max 1 !budget))
    in
    let children = List.init n_children (fun _ -> build (depth + 1)) in
    let text =
      if Rng.bool rng then Rng.pick rng words
      else Rng.pick rng words ^ " " ^ Rng.pick rng words
    in
    Tree.elem ~text (Rng.pick rng labels) children
  in
  Tree.build (build 0)

let random_query rng =
  List.sort_uniq compare
    (List.init (1 + Rng.int rng 3) (fun _ -> Rng.pick rng words))

(* --- Persistence under injected faults --- *)

let persist_faults rng doc =
  let idx = Inverted.build doc in
  let rows = Persist.dump idx in
  let bytes = Persist.encode rows in
  let n = String.length bytes in
  (* torn write: every decode of a random prefix fails with Failure only *)
  for _ = 1 to 8 do
    let k = Rng.int rng n in
    match Persist.decode (String.sub bytes 0 k) with
    | _ -> fail "prefix of %d/%d bytes accepted" k n
    | exception Failure _ -> ()
    | exception e ->
        fail "prefix of %d/%d bytes: unstructured %s" k n (Printexc.to_string e)
  done;
  (* random single-byte mutation: decode either rejects with Failure or
     returns rows that still load (a flip may hit unchecked slack) *)
  for _ = 1 to 8 do
    let k = Rng.int rng n in
    let b = Bytes.of_string bytes in
    Bytes.set b k (Char.chr (Rng.int rng 256));
    expect_structured "mutated decode" (fun () ->
        Persist.decode (Bytes.to_string b))
  done;
  (* injected truncation / corruption / I/O error at the read site *)
  with_temp bytes (fun path ->
      expect_structured "load under truncation" (fun () ->
          Failpoint.with_failpoint Persist.read_site
            (Failpoint.Truncate (Rng.int rng n))
            (fun () -> Persist.load path doc));
      expect_structured "load under corruption" (fun () ->
          Failpoint.with_failpoint Persist.read_site
            (Failpoint.Corrupt (Rng.int rng n))
            (fun () -> Persist.load path doc));
      (match
         Failpoint.with_failpoint Persist.read_site
           (Failpoint.Raise (Sys_error "injected: disk gone"))
           (fun () -> Persist.load path doc)
       with
      | _ -> fail "injected I/O error ignored"
      | exception Sys_error _ -> ()
      | exception e ->
          fail "injected I/O error escaped as %s" (Printexc.to_string e)));
  (* load_or_rebuild always recovers the exact index, whatever the damage *)
  with_temp bytes (fun path ->
      let damage = Rng.int rng 3 in
      (match damage with
      | 0 ->
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc
                (String.sub bytes 0 (Rng.int rng n)))
      | 1 ->
          let b = Bytes.of_string bytes in
          Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_bytes oc b)
      | _ -> Sys.remove path);
      let idx' = Persist.load_or_rebuild ~log:(fun _ -> ()) path doc in
      if Persist.dump idx' <> rows then
        fail "load_or_rebuild returned a different index (damage %d)" damage;
      let reread = In_channel.with_open_bin path In_channel.input_all in
      if reread <> bytes then fail "repaired file not byte-identical")

(* --- Ingestion under bombs and mutation --- *)

let small_limits =
  { Limits.max_depth = 32; max_attrs = 32; max_text_bytes = 4096;
    max_nodes = 256 }

let ingestion_faults rng doc =
  let src = Xks_xml.Writer.to_string doc in
  (* random byte mutation of well-formed XML: parse with tight limits *)
  for _ = 1 to 8 do
    let b = Bytes.of_string src in
    let k = Rng.int rng (Bytes.length b) in
    Bytes.set b k (Char.chr (Rng.int rng 256));
    expect_structured "mutated XML" (fun () ->
        Xks_xml.Parser.parse_string ~limits:small_limits (Bytes.to_string b))
  done;
  (* bombs must hit their cap, not the stack or heap *)
  let deep =
    String.concat "" (List.init 200 (fun _ -> "<a>"))
    ^ "x"
    ^ String.concat "" (List.init 200 (fun _ -> "</a>"))
  in
  (match Xks_xml.Parser.parse_string ~limits:small_limits deep with
  | _ -> fail "depth bomb accepted"
  | exception Limits.Limit_exceeded _ -> ()
  | exception e -> fail "depth bomb escaped as %s" (Printexc.to_string e));
  let entities =
    "<a>" ^ String.concat "" (List.init 2000 (fun _ -> "&amp;&lt;&gt;")) ^ "</a>"
  in
  (match Xks_xml.Parser.parse_string ~limits:small_limits entities with
  | _ -> fail "entity bomb accepted"
  | exception Limits.Limit_exceeded _ -> ()
  | exception e -> fail "entity bomb escaped as %s" (Printexc.to_string e));
  let attrs =
    "<a "
    ^ String.concat " " (List.init 100 (fun i -> Printf.sprintf "x%d=\"v\"" i))
    ^ "/>"
  in
  (match Xks_xml.Parser.parse_string ~limits:small_limits attrs with
  | _ -> fail "attribute bomb accepted"
  | exception Limits.Limit_exceeded _ -> ()
  | exception e -> fail "attribute bomb escaped as %s" (Printexc.to_string e));
  (* mid-parse I/O fault at the file-read site *)
  with_temp src (fun path ->
      expect_structured "parse_file under truncation" (fun () ->
          Failpoint.with_failpoint Xks_xml.Sax.read_site
            (Failpoint.Truncate (Rng.int rng (String.length src)))
            (fun () -> Xks_xml.Parser.parse_file path)))

(* --- Query storms under tiny budgets --- *)

let budget_faults rng doc =
  let e = Engine.of_doc doc in
  let q = random_query rng in
  let unbudgeted alg = Engine.search ~algorithm:alg e q in
  let rungs =
    List.map
      (fun alg -> List.sort compare (List.map (fun h -> h.Engine.fragment) (unbudgeted alg)))
      [ Engine.Validrtf; Engine.Maxmatch; Engine.Maxmatch_original ]
  in
  for _ = 1 to 4 do
    let budget = Budget.create ~max_nodes:(Rng.int rng 50) () in
    match Engine.search ~budget e q with
    | hits ->
        let frags =
          List.sort compare (List.map (fun h -> h.Engine.fragment) hits)
        in
        if not (List.mem frags rungs) then
          fail "budgeted answer matches no ladder rung (query %s)"
            (String.concat " " q)
    | exception e ->
        fail "budgeted search escaped with %s" (Printexc.to_string e)
  done

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let rng = Rng.create seed in
  for i = 1 to iterations do
    let doc = random_doc rng (10 + Rng.int rng 90) in
    persist_faults rng doc;
    ingestion_faults rng doc;
    budget_faults rng doc;
    if i mod 50 = 0 then Printf.printf "%d/%d fault cases ok\n%!" i iterations
  done;
  Failpoint.clear_all ();
  if !failures > 0 then begin
    Printf.eprintf "fault: %d failures (seed %d)\n" !failures seed;
    exit 1
  end;
  Printf.printf "fault: %d cases, all faults handled (seed %d)\n" iterations seed
