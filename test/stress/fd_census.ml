(* fd-census under injected read faults (see EXPERIMENTS.md for the
   methodology).  Every connection fd the serving layer accepts must be
   closed again even when the socket-read path raises mid-request — the
   failpoint at [Server.read_site] armed with [Raise] is exactly the
   path xksleak verifies statically — and a shutdown drain must return
   the process to its pre-server fd baseline: no stranded connection
   fds, no leaked listener, no socket file.

   Census method: count the entries of /proc/self/fd (the census fd
   itself is open during every count, so counts are comparable), run
   request bursts with the read failpoint armed for half of each burst,
   let the fd table settle after each round, and compare:

     - settled count after each round stays within a small constant of
       the baseline (listener + transient cleanup slack) — a per-round
       creep is a connection-fd leak on the fault path;
     - after [request_shutdown] (the body of the SIGTERM handler) and
       join, the count is exactly the baseline again. *)

module L = Xks_bench.Loadgen
module Server = Xks_serve.Server
module Engine = Xks_core.Engine
module Failpoint = Xks_robust.Failpoint

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.eprintf "fd_census: FAIL %s\n%!" s)
    fmt

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let sleep s = ignore (Unix.select [] [] [] s)

let engine =
  lazy
    (Engine.of_doc
       (Xks_datagen.Dblp_gen.generate
          ~config:{ Xks_datagen.Dblp_gen.default_config with entries = 60 }
          ()))

let one_shot socket target =
  let fd = L.connect socket in
  Fun.protect
    ~finally:(fun () -> L.close_quietly fd)
    (fun () ->
      (try L.send_request ~close:true fd target with L.Client_error _ -> ());
      try L.read_reply fd with L.Client_error _ -> None)

let wait_ready socket =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    if Unix.gettimeofday () >= deadline then fail "server never became ready"
    else
      match one_shot socket "/health" with
      | Some r when r.L.status = 200 -> ()
      | Some _ | None ->
          sleep 0.05;
          go ()
      | exception L.Client_error _ ->
          sleep 0.05;
          go ()
  in
  go ()

(* Poll until the fd table settles back to [target] (workers may still
   be inside their cleanup finalizers just after the client saw the
   connection close). *)
let settle_to target =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    let n = count_fds () in
    if n <= target || Unix.gettimeofday () >= deadline then n
    else begin
      sleep 0.02;
      go ()
    end
  in
  go ()

let burst socket n =
  for _ = 1 to n do
    match one_shot socket "/search?q=xml&limit=3" with
    | Some _ | None -> ()
    | exception L.Client_error _ -> ()
  done

let () =
  if not (Sys.file_exists "/proc/self/fd") then begin
    print_endline "fd_census: skipped (no /proc/self/fd)";
    exit 0
  end;
  let e = Lazy.force engine in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xks_fd_census_%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let baseline = count_fds () in
  let cfg =
    {
      (Server.default_config ~socket_path:socket ()) with
      Server.workers = 2;
      queue = 2;
      cache_mb = 0;
      read_timeout_ms = 200;
      drain_timeout_ms = 2000;
    }
  in
  let srv = Server.create cfg e in
  let d = Domain.spawn (fun () -> Server.run srv) in
  wait_ready socket;
  (* the server holds exactly the listener beyond the baseline once
     idle; allow a little slack for cleanup still in flight *)
  let idle_target = baseline + 1 in
  let slack = 3 in
  for round = 1 to 3 do
    (* clean half: the fault path must not be needed for the census to
       hold on ordinary traffic *)
    burst socket 20;
    (* faulted half: first read of each armed window passes, the rest
       raise mid-request inside the worker's read loop *)
    Failpoint.with_failpoint ~skip:1 Server.read_site
      (Failpoint.Raise (Sys_error "fd_census: injected read fault"))
      (fun () -> burst socket 20);
    let settled = settle_to idle_target in
    if settled > idle_target + slack then
      fail "round %d: %d fds after settling, baseline %d (leak of %d)" round
        settled baseline
        (settled - idle_target)
  done;
  (* drain: what the SIGTERM handler does, minus the signal itself *)
  Server.request_shutdown srv;
  Domain.join d;
  Failpoint.clear_all ();
  let after = settle_to baseline in
  if after <> baseline then
    fail "post-drain census: %d fds, baseline %d" after baseline;
  if Sys.file_exists socket then fail "socket file left behind";
  if !failures > 0 then begin
    Printf.eprintf "fd_census: %d failure(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "fd_census: fd table stable under injected read faults\n%!"
