(* BM25 ranking primitives (lib/core/rank), the fixed-capacity top-k
   heap (lib/util/topheap), and the streaming top-k driver's contract:
   its output is exactly the k-prefix of ranking the full enumeration. *)

module Rank = Xks_core.Rank
module Query = Xks_core.Query
module Engine = Xks_core.Engine
module Topheap = Xks_util.Topheap

(* --- Topheap --- *)

let test_topheap_basics () =
  (match Topheap.create ~capacity:0 with
  | (_ : unit Topheap.t) -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ());
  let h : unit Topheap.t = Topheap.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Topheap.capacity h);
  Alcotest.(check int) "empty length" 0 (Topheap.length h);
  Alcotest.(check bool) "not full" false (Topheap.is_full h);
  Alcotest.(check bool) "min on empty" true (Topheap.min h = None);
  (* neg_infinity is always a valid admission threshold: anything gets
     in while the heap is not full. *)
  Alcotest.(check bool) "min_score on empty" true
    (Topheap.min_score h = neg_infinity);
  Alcotest.(check bool) "admits while not full" true
    (Topheap.admits h ~score:neg_infinity ~id:max_int)

let test_topheap_eviction () =
  let h = Topheap.create ~capacity:2 in
  Alcotest.(check bool) "first kept" true (Topheap.insert h ~score:1.0 ~id:5 "a");
  Alcotest.(check bool) "second kept" true
    (Topheap.insert h ~score:3.0 ~id:9 "b");
  Alcotest.(check bool) "full" true (Topheap.is_full h);
  (* The root is the worst kept entry: the admission threshold. *)
  Alcotest.(check bool) "min is the worst" true
    (match Topheap.min h with Some n -> n.Topheap.id = 5 | None -> false);
  Alcotest.(check bool) "lower score not admitted" false
    (Topheap.admits h ~score:0.5 ~id:1);
  Alcotest.(check bool) "lower score insert rejected" false
    (Topheap.insert h ~score:0.5 ~id:1 "c");
  Alcotest.(check bool) "higher score evicts the worst" true
    (Topheap.insert h ~score:2.0 ~id:7 "d");
  Alcotest.(check (list (pair (float 0.0) int)))
    "best first, score 1.0 gone"
    [ (3.0, 9); (2.0, 7) ]
    (List.map (fun (s, id, _) -> (s, id)) (Topheap.to_sorted_list h))

let test_topheap_tie_break () =
  let h : unit Topheap.t = Topheap.create ~capacity:2 in
  ignore (Topheap.insert h ~score:1.0 ~id:4 () : bool);
  ignore (Topheap.insert h ~score:1.0 ~id:2 () : bool);
  (* Ties break toward the smaller id (document order): on an equal
     score, a larger id than the root's loses, a smaller one wins. *)
  Alcotest.(check bool) "equal score, larger id rejected" false
    (Topheap.insert h ~score:1.0 ~id:9 ());
  Alcotest.(check bool) "equal score, smaller id evicts" true
    (Topheap.insert h ~score:1.0 ~id:1 ());
  Alcotest.(check (list int)) "ids ascending on equal score" [ 1; 2 ]
    (List.map (fun (_, id, ()) -> id) (Topheap.to_sorted_list h))

(* Reference semantics: the heap's sorted output is the k-prefix of
   sorting every inserted candidate by (score desc, id asc).  Scores
   come from a tiny set so ties are common; ids are the insertion
   indexes, so every candidate is distinct and the order is total. *)
let prop_topheap_matches_sort =
  let gen =
    QCheck2.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 0 40) (oneofl [ 0.0; 0.5; 1.0; 1.5; 2.0 ])))
  in
  QCheck2.Test.make ~name:"topheap = k-prefix of full sort" ~count:500
    ~print:(fun (k, scores) ->
      Printf.sprintf "k=%d scores=[%s]" k
        (String.concat ";" (List.map string_of_float scores)))
    gen
    (fun (k, scores) ->
      let h = Topheap.create ~capacity:k in
      List.iteri
        (fun id s -> ignore (Topheap.insert h ~score:s ~id id : bool))
        scores;
      let expect =
        List.mapi (fun id s -> (s, id)) scores
        |> List.sort (fun (s1, i1) (s2, i2) ->
               match Float.compare s2 s1 with
               | 0 -> Int.compare i1 i2
               | c -> c)
        |> List.filteri (fun i _ -> i < k)
      in
      List.map (fun (s, id, _) -> (s, id)) (Topheap.to_sorted_list h)
      = expect)

(* --- Rank --- *)

let mk_query () =
  let engine =
    Engine.of_string
      "<r><a>xml data</a><b>xml keyword</b><c>data base</c><d>xml</d></r>"
  in
  Query.make (Engine.index engine) [ "xml"; "data" ]

let test_idf () =
  Alcotest.(check bool) "nonnegative even at df = N" true
    (Rank.idf ~nodes:100 ~df:100 >= 0.0);
  Alcotest.(check bool) "decreasing in df" true
    (Rank.idf ~nodes:100 ~df:1 > Rank.idf ~nodes:100 ~df:50)

let test_params_validation () =
  let q = mk_query () in
  let rejected p =
    match Rank.weights ~params:p q with
    | (_ : Rank.weights) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "k1 < 0 rejected" true
    (rejected { Rank.k1 = -0.1; b = 0.5 });
  Alcotest.(check bool) "b > 1 rejected" true
    (rejected { Rank.k1 = 1.2; b = 1.5 });
  Alcotest.(check bool) "b < 0 rejected" true
    (rejected { Rank.k1 = 1.2; b = -0.1 });
  ignore (Rank.weights ~params:Rank.default_params q : Rank.weights)

let test_contribution_monotone () =
  let q = mk_query () in
  let w = Rank.weights q in
  for i = 0 to Query.k q - 1 do
    Alcotest.(check (float 0.0))
      "tf = 0 contributes nothing" 0.0
      (Rank.contribution w i 0);
    for tf = 0 to 30 do
      Alcotest.(check bool) "monotone nondecreasing in tf" true
        (Rank.contribution w i tf <= Rank.contribution w i (tf + 1))
    done
  done

(* The early-exit soundness condition: [bound ~avail] dominates
   [score_tf tf] for every tf vector componentwise <= avail. *)
let prop_bound_dominates =
  let gen =
    QCheck2.Gen.(
      array_size (return 2) (pair (int_range 1 10) (int_range 0 10)))
  in
  QCheck2.Test.make ~name:"bound dominates score_tf for tf <= avail"
    ~count:500
    ~print:(fun pairs ->
      String.concat ";"
        (Array.to_list
           (Array.map (fun (a, t) -> Printf.sprintf "(%d,%d)" a t) pairs)))
    gen
    (fun pairs ->
      let q = mk_query () in
      let w = Rank.weights q in
      let avail = Array.map fst pairs in
      let tf = Array.map (fun (a, t) -> min a t) pairs in
      Rank.score_tf w tf <= Rank.bound w ~avail)

let test_bound_exhaustion () =
  (* Any keyword with no availability left sinks the bound: every
     future fragment needs at least one node per keyword. *)
  let q = mk_query () in
  let w = Rank.weights q in
  Alcotest.(check bool) "zero avail component" true
    (Rank.bound w ~avail:[| 3; 0 |] = neg_infinity);
  Alcotest.(check bool) "positive avail is finite" true
    (Float.is_finite (Rank.bound w ~avail:[| 3; 1 |]))

(* --- Streaming top-k vs full enumeration --- *)

(* The driver's contract on arbitrary documents: identical hits, in
   the same order, as ranking the full ELCA enumeration and keeping the
   first k.  Exact equality is intentional — both paths compute scores
   with the same Rank.score_tf over the same `Rarest keyword order, so
   even the floats must agree bit-for-bit. *)
let prop_topk_equals_prefix =
  let gen =
    QCheck2.Gen.(triple Helpers.gen_doc Helpers.gen_query (int_range 1 5))
  in
  QCheck2.Test.make ~name:"top-k = k-prefix of full BM25 ranking"
    ~count:300
    ~print:(fun (doc, q, k) ->
      Printf.sprintf "k=%d query=%s doc=%s" k (String.concat "," q)
        (Helpers.print_doc doc))
    gen
    (fun (doc, q, k) ->
      let engine = Engine.of_doc doc in
      let full = Engine.search ~rank:`Bm25 engine q in
      let prefix = List.filteri (fun i _ -> i < k) full in
      Engine.search ~rank:`Bm25 ~k engine q = prefix)

let tests =
  [
    Alcotest.test_case "topheap basics and thresholds" `Quick
      test_topheap_basics;
    Alcotest.test_case "topheap eviction" `Quick test_topheap_eviction;
    Alcotest.test_case "topheap deterministic tie-break" `Quick
      test_topheap_tie_break;
    Helpers.qtest prop_topheap_matches_sort;
    Alcotest.test_case "idf sanity" `Quick test_idf;
    Alcotest.test_case "BM25 params validation" `Quick test_params_validation;
    Alcotest.test_case "contribution monotone in tf" `Quick
      test_contribution_monotone;
    Helpers.qtest prop_bound_dominates;
    Alcotest.test_case "bound collapses on exhausted keyword" `Quick
      test_bound_exhaustion;
    Helpers.qtest prop_topk_equals_prefix;
  ]
