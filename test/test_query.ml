(* Query preparation and validation. *)

module Query = Xks_core.Query
module Klist = Xks_index.Klist

let idx_of xml = Xks_index.Inverted.build (Xks_xml.Parser.parse_string xml)

let test_normalisation_and_dedup () =
  let idx = idx_of "<r><a>xml</a><b>search</b></r>" in
  let q = Query.make idx [ "XML"; "Search"; "xml" ] in
  Alcotest.(check (list string)) "normalised, first-occurrence order"
    [ "xml"; "search" ]
    (Array.to_list q.Query.keywords);
  Alcotest.(check int) "k" 2 (Query.k q)

let test_rarest_first_order () =
  let idx =
    idx_of "<r><a>xml search</a><b>search</b><c>search keyword</c></r>"
  in
  (* posting lengths: search 3, keyword 1, xml 1 *)
  let q = Query.make ~order:`Rarest idx [ "search"; "xml"; "keyword" ] in
  Alcotest.(check (list string)) "shortest posting list first, ties stable"
    [ "xml"; "keyword"; "search" ]
    (Array.to_list q.Query.keywords);
  Alcotest.(check (list int)) "postings permuted with their keywords"
    [ 1; 1; 3 ]
    (Array.to_list (Array.map Array.length q.Query.postings));
  (* The default stays first-occurrence order. *)
  let q' = Query.make idx [ "search"; "xml"; "keyword" ] in
  Alcotest.(check (list string)) "default keeps given order"
    [ "search"; "xml"; "keyword" ]
    (Array.to_list q'.Query.keywords)

let test_validation () =
  let idx = idx_of "<r>x</r>" in
  Alcotest.check_raises "empty" (Invalid_argument "Query.make: empty query")
    (fun () -> ignore (Query.make idx []));
  Alcotest.check_raises "only empties" (Invalid_argument "Query.make: empty query")
    (fun () -> ignore (Query.make idx [ "  "; "" ]))

let test_has_results () =
  let idx = idx_of "<r><a>xml</a></r>" in
  Alcotest.(check bool) "present" true (Query.has_results (Query.make idx [ "xml" ]));
  Alcotest.(check bool) "absent" false
    (Query.has_results (Query.make idx [ "xml"; "zebra" ]))

let test_keyword_index () =
  let idx = idx_of "<r><a>xml search</a></r>" in
  let q = Query.make idx [ "xml"; "search" ] in
  Alcotest.(check (option int)) "first" (Some 0) (Query.keyword_index q "XML");
  Alcotest.(check (option int)) "second" (Some 1) (Query.keyword_index q "search");
  Alcotest.(check (option int)) "absent" None (Query.keyword_index q "nope")

let test_node_klist () =
  let idx = idx_of "<r><a>xml search</a><b>xml</b></r>" in
  let q = Query.make idx [ "xml"; "search" ] in
  let k = Query.k q in
  Alcotest.(check string) "both keywords" "11"
    (Format.asprintf "%a" (Klist.pp ~k) (Query.node_klist q 1));
  Alcotest.(check string) "one keyword" "10"
    (Format.asprintf "%a" (Klist.pp ~k) (Query.node_klist q 2));
  Alcotest.(check string) "no keyword" "00"
    (Format.asprintf "%a" (Klist.pp ~k) (Query.node_klist q 0))

let test_of_postings_validation () =
  let doc = Xks_xml.Parser.parse_string "<r><a>x</a></r>" in
  let check_raises msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail msg
  in
  check_raises "arity" (fun () ->
      Query.of_postings doc ~keywords:[ "a" ] [||]);
  check_raises "duplicate" (fun () ->
      Query.of_postings doc ~keywords:[ "a"; "a" ] [| [| 0 |]; [| 1 |] |]);
  check_raises "out of range" (fun () ->
      Query.of_postings doc ~keywords:[ "a" ] [| [| 9 |] |]);
  check_raises "unsorted" (fun () ->
      Query.of_postings doc ~keywords:[ "a" ] [| [| 1; 0 |] |]);
  (* And the happy path. *)
  let q = Query.of_postings doc ~keywords:[ "a" ] [| [| 1 |] |] in
  Alcotest.(check bool) "valid" true (Query.has_results q)

let test_pp () =
  let idx = idx_of "<r>x</r>" in
  let q = Query.make idx [ "a"; "b" ] in
  Alcotest.(check string) "rendering" "{a, b}" (Format.asprintf "%a" Query.pp q)

let tests =
  [
    Alcotest.test_case "normalisation and dedup" `Quick test_normalisation_and_dedup;
    Alcotest.test_case "rarest-first ordering" `Quick test_rarest_first_order;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "has_results" `Quick test_has_results;
    Alcotest.test_case "keyword_index" `Quick test_keyword_index;
    Alcotest.test_case "node_klist" `Quick test_node_klist;
    Alcotest.test_case "of_postings validation" `Quick test_of_postings_validation;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
