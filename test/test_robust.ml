(* Robustness layer: budgets, ingestion limits, failpoints, and the
   engine's degradation ladder. *)

module Budget = Xks_robust.Budget
module Limits = Xks_robust.Limits
module Failpoint = Xks_robust.Failpoint
module Engine = Xks_core.Engine
module Fragment = Xks_core.Fragment

(* --- Budget semantics --- *)

let test_node_budget () =
  let b = Budget.create ~max_nodes:10 () in
  Budget.tick b 10;
  (* exactly at the cap: still fine *)
  (match Budget.tick b 1 with
  | exception Budget.Exhausted Budget.Node_budget -> ()
  | () -> Alcotest.fail "node cap not enforced"
  | exception Budget.Exhausted Budget.Deadline ->
      Alcotest.fail "wrong exhaustion reason");
  Alcotest.(check int) "ticks counted" 11 (Budget.visited b);
  let b' = Budget.renew b in
  Alcotest.(check int) "renew resets the counter" 0 (Budget.visited b');
  Budget.tick b' 10 (* the fresh allowance is usable again *)

let test_deadline_fake_clock () =
  let now = ref 0.0 in
  let b =
    Budget.create ~now:(fun () -> !now) ~check_interval:1 ~deadline_ms:100 ()
  in
  Budget.tick b 1;
  (* 50 ms in: still alive *)
  now := 0.05;
  Budget.tick b 1;
  (* 200 ms in: past the deadline *)
  now := 0.2;
  (match Budget.tick b 1 with
  | exception Budget.Exhausted Budget.Deadline -> ()
  | () -> Alcotest.fail "deadline not enforced");
  (* renew keeps the same absolute deadline — still exhausted *)
  match Budget.check (Budget.renew b) with
  | exception Budget.Exhausted Budget.Deadline -> ()
  | () -> Alcotest.fail "renew must not extend the deadline"

let test_clock_checked_every_interval () =
  let calls = ref 0 in
  let now () = incr calls; 0.0 in
  let b = Budget.create ~now ~check_interval:100 ~deadline_ms:60_000 () in
  Budget.tick b 1;
  (* the first tick always checks; from here on, one check per interval *)
  let before = !calls in
  for _ = 1 to 99 do Budget.tick b 1 done;
  Alcotest.(check int) "no clock reads between intervals" before !calls;
  Budget.tick b 1;
  Alcotest.(check int) "one clock read at the interval" (before + 1) !calls

let test_unlimited_budget () =
  let b = Budget.create () in
  Budget.tick b 10_000_000;
  Budget.check b;
  Alcotest.(check int) "visited still tracked" 10_000_000 (Budget.visited b)

let test_create_validation () =
  (match Budget.create ~max_nodes:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative max_nodes accepted");
  match Budget.create ~check_interval:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero check_interval accepted"

(* --- Ingestion limits --- *)

let deep_doc n =
  String.concat "" (List.init n (fun _ -> "<a>"))
  ^ "x"
  ^ String.concat "" (List.init n (fun _ -> "</a>"))

let expect_limit ~name limits src =
  match Xks_xml.Parser.parse_string ~limits src with
  | exception Limits.Limit_exceeded { limit; line; col; value; max } ->
      Alcotest.(check string) "which cap" name limit;
      Alcotest.(check bool) "positioned" true (line >= 1 && col >= 1);
      Alcotest.(check bool) "value crossed the cap" true (value > max)
  | _ -> Alcotest.failf "%s bomb accepted" name

let test_depth_bomb () =
  expect_limit ~name:"max_depth"
    { Limits.unlimited with max_depth = 16 }
    (deep_doc 64)

let test_attr_bomb () =
  let attrs =
    String.concat " " (List.init 64 (fun i -> Printf.sprintf "a%d=\"v\"" i))
  in
  expect_limit ~name:"max_attrs"
    { Limits.unlimited with max_attrs = 16 }
    (Printf.sprintf "<a %s/>" attrs)

let test_text_bomb () =
  expect_limit ~name:"max_text_bytes"
    { Limits.unlimited with max_text_bytes = 16 }
    ("<a>" ^ String.make 64 'x' ^ "</a>")

let test_entity_text_counts () =
  (* entity expansions charge the text budget too *)
  expect_limit ~name:"max_text_bytes"
    { Limits.unlimited with max_text_bytes = 4 }
    ("<a>" ^ String.concat "" (List.init 8 (fun _ -> "&amp;")) ^ "</a>")

let test_node_bomb () =
  expect_limit ~name:"max_nodes"
    { Limits.unlimited with max_nodes = 16 }
    ("<a>" ^ String.concat "" (List.init 64 (fun _ -> "<b/>")) ^ "</a>")

let test_defaults_admit_normal_documents () =
  let doc = Xks_datagen.Paper_fixtures.publications () in
  let src = Xks_xml.Writer.to_string doc in
  let reparsed = Xks_xml.Parser.parse_string ~limits:Limits.default src in
  Alcotest.(check int) "same size" (Xks_xml.Tree.size doc)
    (Xks_xml.Tree.size reparsed)

(* --- Failpoints --- *)

let with_temp_bytes data f =
  let path = Filename.temp_file "xks_robust" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc data;
      close_out oc;
      f path)

let test_failpoint_passthrough () =
  Failpoint.clear_all ();
  with_temp_bytes "hello" (fun path ->
      Alcotest.(check string) "disarmed passthrough" "hello"
        (Failpoint.read_file ~site:"t.site" path);
      Alcotest.(check int) "hit counted" 1 (Failpoint.hits "t.site"));
  Failpoint.clear_all ()

let test_failpoint_actions () =
  with_temp_bytes "hello" (fun path ->
      let read () = Failpoint.read_file ~site:"t.site" path in
      Alcotest.(check string) "truncate" "he"
        (Failpoint.with_failpoint "t.site" (Failpoint.Truncate 2) read);
      let corrupted =
        Failpoint.with_failpoint "t.site" (Failpoint.Corrupt 1) read
      in
      Alcotest.(check char) "bit-flipped byte"
        (Char.chr (Char.code 'e' lxor 0xFF))
        corrupted.[1];
      (match
         Failpoint.with_failpoint "t.site"
           (Failpoint.Raise (Sys_error "injected")) read
       with
      | exception Sys_error m when m = "injected" -> ()
      | _ -> Alcotest.fail "armed exception not raised");
      (* with_failpoint disarms even after the exception above *)
      Alcotest.(check string) "disarmed afterwards" "hello" (read ()));
  Failpoint.clear_all ()

let test_failpoint_skip () =
  with_temp_bytes "hello" (fun path ->
      let read () = Failpoint.read_file ~site:"t.site" path in
      Failpoint.with_failpoint ~skip:2 "t.site" (Failpoint.Truncate 0)
        (fun () ->
          Alcotest.(check string) "first skipped" "hello" (read ());
          Alcotest.(check string) "second skipped" "hello" (read ());
          Alcotest.(check string) "third fires" "" (read ())));
  Failpoint.clear_all ()

(* --- Budget coverage of the hot traversal loops ---

   Each of these loops once ran unticked (xkscost's unticked-loop rule
   flagged them): a request deadline could not interrupt the traversal
   itself, only the work before or after it.  The tests pin the ticks
   by exhausting a budget sized to run out inside the loop. *)

let doc_and_postings xml query =
  let doc = Xks_xml.Parser.parse_string xml in
  (doc, Helpers.postings_for doc query)

let wide_xml n =
  "<r>" ^ String.concat "" (List.init n (fun _ -> "<a>w1 w2</a>")) ^ "</r>"

let test_budget_interrupts_rtf_merge () =
  (* keyword_node_ids ticks once per posting occurrence merged *)
  let doc, ps = doc_and_postings (wide_xml 32) [ "w1"; "w2" ] in
  let q = Xks_core.Query.of_postings doc ~keywords:[ "w1"; "w2" ] ps in
  let b = Budget.create ~max_nodes:10 () in
  match Xks_core.Rtf.keyword_node_ids ~budget:b q with
  | exception Budget.Exhausted Budget.Node_budget -> ()
  | _ -> Alcotest.fail "posting-merge loop ran past the node budget"

let test_budget_interrupts_slca_sweep () =
  (* indexed_lookup_eager ticks once per rarest-keyword occurrence *)
  let doc, ps = doc_and_postings (wide_xml 32) [ "w1"; "w2" ] in
  let b = Budget.create ~max_nodes:10 () in
  match Xks_lca.Slca.indexed_lookup_eager ~budget:b doc ps with
  | exception Budget.Exhausted Budget.Node_budget -> ()
  | _ -> Alcotest.fail "SLCA candidate sweep ran past the node budget"

let test_budget_interrupts_elca_witness () =
  (* is_elca ticks once per witness probe, even with no child ranges *)
  let doc, ps = doc_and_postings (wide_xml 4) [ "w1"; "w2" ] in
  let b = Budget.create ~max_nodes:0 () in
  match
    Xks_lca.Indexed_stack.is_elca ~budget:b doc ps (Xks_xml.Tree.node doc 0) []
  with
  | exception Budget.Exhausted Budget.Node_budget -> ()
  | _ -> Alcotest.fail "witness probe ran past the node budget"

(* A root-to-leaf chain where every node holds both keywords: the top-k
   driver pushes one stack entry per occurrence and never unwinds, so
   every pop — and the per-passed-range accounting it triggers in
   [emit] — happens in the post-driver drain. *)
let chain_doc_and_postings d =
  let xml =
    String.concat "" (List.init d (fun _ -> "<a>w1 w2"))
    ^ String.concat "" (List.init d (fun _ -> "</a>"))
  in
  doc_and_postings xml [ "w1"; "w2" ]

let run_topk ~budget ~k doc ps =
  Xks_lca.Topk.run ~budget ~k
    ~score:(fun ~lca:_ ~tf:_ -> 0.0)
    ~bound:(fun ~avail:_ -> infinity)
    doc ps

let test_budget_interrupts_topk_drain () =
  let d = 16 in
  let doc, ps = chain_doc_and_postings d in
  (* the drain performs ticks of its own, beyond the driver's one per
     occurrence: pops, witness probes and passed-range transfers *)
  let full = Budget.create () in
  ignore (run_topk ~budget:full ~k:1 doc ps : Xks_lca.Topk.outcome);
  Alcotest.(check bool) "drain work is ticked" true (Budget.visited full > d);
  (* a budget that survives the driver exactly dies in the drain *)
  let b = Budget.create ~max_nodes:d () in
  match run_topk ~budget:b ~k:1 doc ps with
  | exception Budget.Exhausted Budget.Node_budget -> ()
  | _ -> Alcotest.fail "post-driver drain ran past the node budget"

let test_deadline_interrupts_topk () =
  (* fake clock advancing 10 ms per read, checked on every tick: the
     deadline fires mid-scan no matter which loop is running *)
  let doc, ps = chain_doc_and_postings 16 in
  let reads = ref 0 in
  let now () = incr reads; float_of_int !reads *. 0.01 in
  let b = Budget.create ~now ~check_interval:1 ~deadline_ms:50 () in
  match run_topk ~budget:b ~k:1 doc ps with
  | exception Budget.Exhausted Budget.Deadline -> ()
  | _ -> Alcotest.fail "deadline did not interrupt the top-k scan"

(* --- The degradation ladder --- *)

let skeleton hits =
  hits
  |> List.map (fun h ->
         (h.Engine.fragment.Fragment.root, Fragment.members_list h.Engine.fragment))
  |> List.sort compare

let test_degrades_to_slca_answer () =
  (* A budget of one node exhausts every rung, so the search lands on the
     unbudgeted SLCA-only floor: same fragments, tagged degraded. *)
  let e = Engine.of_doc (Xks_datagen.Paper_fixtures.publications ()) in
  let q = Xks_datagen.Paper_fixtures.q2 in
  let budget = Budget.create ~max_nodes:1 () in
  let hits = Engine.search ~budget e q in
  Alcotest.(check bool) "tagged degraded" true
    (Engine.degraded_reason hits = Some Budget.Node_budget);
  List.iter
    (fun (h : Engine.hit) ->
      Alcotest.(check bool) "every hit tagged" true
        (h.Engine.degraded = Some Budget.Node_budget))
    hits;
  let floor = Engine.search ~algorithm:Engine.Maxmatch_original e q in
  Alcotest.(check bool) "equals the SLCA-only answer" true
    (skeleton hits = skeleton floor)

let test_generous_budget_is_full_fidelity () =
  let e = Engine.of_doc (Xks_datagen.Paper_fixtures.publications ()) in
  let q = Xks_datagen.Paper_fixtures.q3 in
  let budget = Budget.create ~max_nodes:10_000_000 ~deadline_ms:600_000 () in
  let budgeted = Engine.search ~budget e q in
  let unbudgeted = Engine.search e q in
  Alcotest.(check bool) "not degraded" true
    (Engine.degraded_reason budgeted = None);
  Alcotest.(check bool) "same answer" true
    (skeleton budgeted = skeleton unbudgeted)

let test_expired_deadline_still_answers () =
  let e = Engine.of_doc (Xks_datagen.Paper_fixtures.team ()) in
  let q = Xks_datagen.Paper_fixtures.q4 in
  let now = ref 0.0 in
  let budget =
    Budget.create ~now:(fun () -> !now) ~check_interval:1 ~deadline_ms:1 ()
  in
  now := 10.0;
  (* deadline long gone before the query starts *)
  let hits = Engine.search ~budget e q in
  Alcotest.(check bool) "degraded by deadline" true
    (Engine.degraded_reason hits = Some Budget.Deadline);
  Alcotest.(check bool) "still produced the SLCA answer" true
    (skeleton hits
    = skeleton (Engine.search ~algorithm:Engine.Maxmatch_original e q))

let prop_budgeted_equals_some_ladder_rung =
  (* Whatever the budget, the answer matches one of the three algorithms
     run without a budget — degradation never invents fragments. *)
  QCheck2.Test.make ~name:"budgeted answer is some ladder rung's answer"
    ~count:60
    QCheck2.Gen.(pair Helpers.gen_doc (int_range 1 200))
    ~print:(fun (doc, n) -> Printf.sprintf "%s ~max_nodes:%d" (Helpers.print_doc doc) n)
    (fun (doc, max_nodes) ->
      let e = Engine.of_doc doc in
      let q = [ "w0"; "w1" ] in
      let budget = Budget.create ~max_nodes () in
      let got = skeleton (Engine.search ~budget e q) in
      List.exists
        (fun algorithm -> got = skeleton (Engine.search ~algorithm e q))
        [ Engine.Validrtf; Engine.Maxmatch; Engine.Maxmatch_original ])

let tests =
  [
    Alcotest.test_case "node budget" `Quick test_node_budget;
    Alcotest.test_case "deadline (fake clock)" `Quick test_deadline_fake_clock;
    Alcotest.test_case "clock checked per interval" `Quick
      test_clock_checked_every_interval;
    Alcotest.test_case "unlimited budget" `Quick test_unlimited_budget;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "depth bomb" `Quick test_depth_bomb;
    Alcotest.test_case "attribute bomb" `Quick test_attr_bomb;
    Alcotest.test_case "text bomb" `Quick test_text_bomb;
    Alcotest.test_case "entity expansion charges text" `Quick
      test_entity_text_counts;
    Alcotest.test_case "node bomb" `Quick test_node_bomb;
    Alcotest.test_case "defaults admit normal documents" `Quick
      test_defaults_admit_normal_documents;
    Alcotest.test_case "failpoint passthrough" `Quick test_failpoint_passthrough;
    Alcotest.test_case "failpoint actions" `Quick test_failpoint_actions;
    Alcotest.test_case "failpoint skip" `Quick test_failpoint_skip;
    Alcotest.test_case "budget interrupts the RTF posting merge" `Quick
      test_budget_interrupts_rtf_merge;
    Alcotest.test_case "budget interrupts the SLCA sweep" `Quick
      test_budget_interrupts_slca_sweep;
    Alcotest.test_case "budget interrupts the ELCA witness probe" `Quick
      test_budget_interrupts_elca_witness;
    Alcotest.test_case "budget interrupts the top-k drain" `Quick
      test_budget_interrupts_topk_drain;
    Alcotest.test_case "deadline interrupts the top-k scan" `Quick
      test_deadline_interrupts_topk;
    Alcotest.test_case "tiny budget degrades to the SLCA answer" `Quick
      test_degrades_to_slca_answer;
    Alcotest.test_case "generous budget is full fidelity" `Quick
      test_generous_budget_is_full_fidelity;
    Alcotest.test_case "expired deadline still answers" `Quick
      test_expired_deadline_still_answers;
    Helpers.qtest prop_budgeted_equals_some_ladder_rung;
  ]
