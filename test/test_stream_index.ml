(* Streaming index construction: equality with the tree-based index. *)

module Stream_index = Xks_index.Stream_index
module Inverted = Xks_index.Inverted
module Persist = Xks_index.Persist
module Writer = Xks_xml.Writer

let rows_of_doc doc = Persist.dump (Inverted.build doc)

let test_matches_tree_index () =
  let doc = Xks_datagen.Paper_fixtures.publications () in
  Alcotest.(check bool) "same rows" true
    (Stream_index.rows_of_string (Writer.to_string doc) = rows_of_doc doc)

let test_mixed_content_concatenated () =
  (* "pre" + "post" concatenate into one word, as in the tree model. *)
  let src = "<a>pre<b/>post</a>" in
  let doc = Xks_xml.Parser.parse_string src in
  Alcotest.(check bool) "mixed content treated alike" true
    (Stream_index.rows_of_string src = rows_of_doc doc);
  Alcotest.(check bool) "the concatenated word exists" true
    (List.exists (fun (w, _, _) -> w = "prepost") (Stream_index.rows_of_string src))

let test_rows_load_into_engine () =
  let doc = Xks_datagen.Paper_fixtures.publications () in
  let rows = Stream_index.rows_of_string (Writer.to_string doc) in
  let idx = Inverted.of_rows doc rows in
  let r = Xks_core.Validrtf.run idx Xks_datagen.Paper_fixtures.q2 in
  Alcotest.(check int) "searchable" 2 (List.length r.Xks_core.Pipeline.fragments)

let test_save_file () =
  let doc = Xks_datagen.Paper_fixtures.team () in
  let xml_path = Filename.temp_file "xks_stream" ".xml" in
  let idx_path = Filename.temp_file "xks_stream" ".idx" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove xml_path;
      Sys.remove idx_path)
    (fun () ->
      Writer.to_file xml_path doc;
      let words = Stream_index.save_file ~input:xml_path ~output:idx_path () in
      Alcotest.(check bool) "some words" true (words > 0);
      let idx = Persist.load idx_path doc in
      Alcotest.(check (list int)) "posting intact"
        (Array.to_list (Inverted.posting (Inverted.build doc) "gassol"))
        (Array.to_list (Inverted.posting idx "gassol")))

let prop_stream_equals_tree =
  QCheck2.Test.make ~name:"stream rows = tree rows on random documents"
    ~count:200 ~print:Helpers.print_doc Helpers.gen_doc (fun doc ->
      Stream_index.rows_of_string (Writer.to_string doc) = rows_of_doc doc)

let tests =
  [
    Alcotest.test_case "matches the tree-based index" `Quick test_matches_tree_index;
    Alcotest.test_case "mixed content" `Quick test_mixed_content_concatenated;
    Alcotest.test_case "rows load into an engine" `Quick test_rows_load_into_engine;
    Alcotest.test_case "save_file" `Quick test_save_file;
    Helpers.qtest prop_stream_equals_tree;
  ]
