(* Batch execution layer (lib/exec): worker pool, sharded result
   cache, and jobs=4 determinism against the sequential engine. *)

module Engine = Xks_core.Engine
module Exec = Xks_exec.Exec
module Pool = Xks_exec.Pool
module Cache = Xks_exec.Cache
module Deque = Xks_exec.Deque
module Race = Xks_check.Race
module Trace = Xks_trace.Trace
module Fixtures = Xks_datagen.Paper_fixtures
module Inverted = Xks_index.Inverted

(* --- Deque --- *)

let test_deque_empty () =
  let d : int Deque.t = Deque.create () in
  Alcotest.(check bool) "fresh deque is empty" true (Deque.is_empty d);
  Alcotest.(check int) "fresh deque length" 0 (Deque.length d);
  Alcotest.(check (option int)) "pop on empty" None (Deque.pop d);
  Alcotest.(check (option int)) "steal on empty" None (Deque.steal d);
  (* Emptying and refilling must not confuse the ring indices. *)
  Deque.push d 1;
  Alcotest.(check (option int)) "single element pops" (Some 1) (Deque.pop d);
  Alcotest.(check (option int)) "steal after drain" None (Deque.steal d)

let test_deque_owner_lifo_thief_fifo () =
  let d : int Deque.t = Deque.create ~capacity:2 () in
  List.iter (Deque.push d) [ 1; 2; 3; 4; 5 ] (* forces a ring grow *);
  Alcotest.(check int) "five queued" 5 (Deque.length d);
  (* The owner works the bottom: freshest first. *)
  Alcotest.(check (option int)) "owner pops newest" (Some 5) (Deque.pop d);
  (* Thieves work the top: oldest first, in submission order. *)
  Alcotest.(check (option int)) "thief steals oldest" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "thief steals next oldest" (Some 2)
    (Deque.steal d);
  Alcotest.(check (option int)) "owner still sees its newest" (Some 4)
    (Deque.pop d);
  Alcotest.(check (option int)) "last element from either end" (Some 3)
    (Deque.steal d);
  Alcotest.(check bool) "drained" true (Deque.is_empty d)

(* --- Pool --- *)

let test_pool_preserves_order () =
  Pool.with_pool ~size:3 (fun p ->
      let results =
        Pool.run_all p (List.init 20 (fun i () -> i * i))
      in
      Alcotest.(check (array int)) "input order"
        (Array.init 20 (fun i -> i * i))
        results)

let test_pool_propagates_exception () =
  Pool.with_pool ~size:2 (fun p ->
      let ran = Atomic.make 0 in
      let thunks =
        List.init 8 (fun i () ->
            Atomic.incr ran;
            if i = 3 then failwith "task 3 boom";
            i)
      in
      (match Pool.run_all p thunks with
      | _ -> Alcotest.fail "expected Task_error"
      | exception Pool.Task_error (Failure msg) ->
          Alcotest.(check string) "wrapped exception" "task 3 boom" msg
      | exception e -> raise e);
      (* The batch still ran every task before re-raising. *)
      Alcotest.(check int) "all tasks ran" 8 (Atomic.get ran))

let test_pool_rejects_after_shutdown () =
  let p = Pool.create ~size:1 () in
  Pool.shutdown p;
  Alcotest.check_raises "second shutdown" Pool.Pool_closed (fun () ->
      Pool.shutdown p);
  Alcotest.check_raises "submit after shutdown" Pool.Pool_closed (fun () ->
      Pool.submit p (fun () -> ()));
  Alcotest.check_raises "run_all after shutdown" Pool.Pool_closed (fun () ->
      ignore (Pool.run_all p [ (fun () -> ()) ]))

(* Concurrent shutdown callers: exactly one joins the workers and
   returns; every loser gets the deterministic [Pool_closed], never a
   silent success overlapping a pool that is still draining. *)
let test_pool_concurrent_shutdown () =
  for _ = 1 to 20 do
    let p = Pool.create ~size:2 () in
    let callers = 4 in
    let outcomes =
      List.init callers (fun _ ->
          Domain.spawn (fun () ->
              match Pool.shutdown p with
              | () -> `Won
              | exception Pool.Pool_closed -> `Lost))
      |> List.map Domain.join
    in
    let winners =
      List.length (List.filter (fun o -> o = `Won) outcomes)
    in
    Alcotest.(check int) "exactly one winner" 1 winners;
    Alcotest.(check int) "everyone else lost" (callers - 1)
      (List.length (List.filter (fun o -> o = `Lost) outcomes))
  done

let test_pool_rejects_zero_size () =
  Alcotest.check_raises "size 0"
    (Invalid_argument "Pool.create: size must be >= 1") (fun () ->
      ignore (Pool.create ~size:0 ()))

let test_pool_caps_at_domain_count () =
  let host = max 1 (Domain.recommended_domain_count ()) in
  let p = Pool.create ~size:(host + 7) () in
  Alcotest.(check int) "capped at the host's domains" host (Pool.size p);
  Pool.shutdown p;
  let p = Pool.create ~size:(host + 7) ~oversubscribe:true () in
  Alcotest.(check int) "oversubscribe keeps the requested size" (host + 7)
    (Pool.size p);
  Pool.shutdown p

(* Order is an input-slot contract, not a completion-order accident:
   uneven task durations on an oversubscribed pool force thieves to
   run slices of other workers' chunks, and result [i] must still be
   thunk [i]'s value. *)
let test_pool_run_all_order_under_stealing () =
  Pool.with_pool ~size:4 ~oversubscribe:true (fun p ->
      let n = 64 in
      let results =
        Pool.run_all p
          (List.init n (fun i () ->
               (* Every 7th task is heavy, so its owner's deque backs up
                  and the idle workers steal the rest of the chunk. *)
               if i mod 7 = 0 then begin
                 let acc = ref 0 in
                 for k = 1 to 200_000 do
                   acc := (!acc + k) land 0xFFFF
                 done;
                 ignore !acc
               end;
               i * 3))
      in
      Alcotest.(check (array int)) "input order despite stealing"
        (Array.init n (fun i -> i * 3))
        results)

(* Regression: [run_all] racing a concurrent [shutdown] must end in
   [Pool_closed], never a hang.  The original queue woke sleeping
   workers but not a [run_all] caller already waiting on results that
   no worker would ever take. *)
let test_pool_run_all_vs_concurrent_shutdown () =
  for _ = 1 to 10 do
    let p = Pool.create ~size:1 ~oversubscribe:true () in
    let started = Semaphore.Binary.make false in
    let release = Semaphore.Binary.make false in
    (* Pin the only worker so the shutdown below stays in flight while
       the prober races it. *)
    Pool.submit p (fun () ->
        Semaphore.Binary.release started;
        Semaphore.Binary.acquire release);
    Semaphore.Binary.acquire started;
    let prober =
      Domain.spawn (fun () ->
          let rec probe n =
            match Pool.run_all p [ (fun () -> n) ] with
            | _ -> probe (n + 1)
            | exception Pool.Pool_closed -> ()
          in
          probe 0)
    in
    let closer = Domain.spawn (fun () -> Pool.shutdown p) in
    Semaphore.Binary.release release;
    (* Both must return: the closer joins the unpinned worker, and the
       prober observes Pool_closed in bounded time. *)
    Domain.join closer;
    Domain.join prober
  done

(* Shutdown drains: every job already queued runs before the workers
   exit, even the ones sitting in deques behind a slow first job. *)
let test_pool_shutdown_drains_deques () =
  let ran = Atomic.make 0 in
  let n = 40 in
  let p = Pool.create ~size:2 ~oversubscribe:true () in
  for i = 1 to n do
    Pool.submit p (fun () ->
        (* The first job dawdles so most of the batch is still queued
           when shutdown is called. *)
        if i = 1 then begin
          let acc = ref 0 in
          for k = 1 to 2_000_000 do
            acc := (!acc + k) land 0xFFFF
          done;
          ignore !acc
        end;
        Atomic.incr ran)
  done;
  Pool.shutdown p;
  Alcotest.(check int) "every queued job ran before exit" n (Atomic.get ran)

(* --- Cache --- *)

let engine_xml = "<r><a>xml search</a><b>xml</b><c>keyword</c></r>"
let mk_engine () = Engine.of_string engine_xml

let mk_key engine words =
  match
    Cache.key ~engine ~algorithm:Engine.Validrtf
      ~budget_class:Cache.unbudgeted words
  with
  | Some k -> k
  | None -> Alcotest.fail "expected a cache key"

(* An empty result costs the fixed per-result overhead (128 bytes in
   the cache's accounting) — handy for exact eviction tests. *)
let empty_result = { Engine.hits = []; degraded = None }

let test_key_normalisation () =
  let engine = mk_engine () in
  let k1 = mk_key engine [ "XML"; "Search"; "xml" ] in
  let k2 = mk_key engine [ "search"; "xml" ] in
  Alcotest.(check bool) "order and duplicates collapse" true (k1 = k2);
  let k3 = mk_key engine [ "search"; "xml"; "keyword" ] in
  Alcotest.(check bool) "distinct keyword sets differ" false (k1 = k3);
  Alcotest.(check bool) "no surviving keyword"
    true
    (Cache.key ~engine ~algorithm:Engine.Validrtf
       ~budget_class:Cache.unbudgeted [ " "; "" ]
    = None)

let test_key_stale_invalidation () =
  (* A reloaded/rebuilt index makes a new engine; its keys can never
     collide with the old engine's entries. *)
  let e1 = mk_engine () in
  let e2 =
    Engine.of_index (Inverted.build (Xks_xml.Parser.parse_string engine_xml))
  in
  let cache = Cache.create ~max_bytes:(1024 * 1024) () in
  Cache.add cache (mk_key e1 [ "xml" ]) empty_result;
  Alcotest.(check bool) "old engine hits" true
    (Cache.find cache (mk_key e1 [ "xml" ]) <> None);
  Alcotest.(check bool) "new engine misses" true
    (Cache.find cache (mk_key e2 [ "xml" ]) = None)

let test_key_rank_params () =
  (* Rank mode and top-k limit are part of the key: ranked and
     truncated runs of the same keywords never collide. *)
  let engine = mk_engine () in
  let key ?rank ?k words =
    match
      Cache.key ~engine ~algorithm:Engine.Validrtf ?rank ?k
        ~budget_class:Cache.unbudgeted words
    with
    | Some key -> key
    | None -> Alcotest.fail "expected a cache key"
  in
  let plain = key [ "xml" ] in
  let ranked = key ~rank:`Bm25 [ "xml" ] in
  let truncated = key ~rank:`Bm25 ~k:10 [ "xml" ] in
  Alcotest.(check bool) "rank mode distinguishes keys" false (plain = ranked);
  Alcotest.(check bool) "k distinguishes keys" false (ranked = truncated);
  Alcotest.(check bool) "explicit default rank collides with implicit" true
    (plain = key ~rank:`Heuristic [ "xml" ]);
  (* Alternating ranked and unranked batches for the same keywords
     through one cache: each mode must hit its own entry, never a
     stale answer cached under the other mode. *)
  let cache = Cache.create ~max_bytes:(1024 * 1024) () in
  let q = [ "xml" ] in
  let expect_plain = (Engine.search_result engine q).Engine.hits in
  let expect_top1 =
    (Engine.search_result ~rank:`Bm25 ~k:1 engine q).Engine.hits
  in
  Alcotest.(check bool) "top-1 differs from the unranked answer" false
    (expect_plain = expect_top1);
  for _round = 1 to 3 do
    (match Exec.search_batch ~cache engine [ q ] with
    | [| hits |] ->
        Alcotest.(check bool) "unranked round served unranked" true
          (hits = expect_plain)
    | _ -> Alcotest.fail "one result expected");
    match Exec.search_batch ~cache ~rank:`Bm25 ~k:1 engine [ q ] with
    | [| hits |] ->
        Alcotest.(check bool) "ranked round served top-1" true
          (hits = expect_top1)
    | _ -> Alcotest.fail "one result expected"
  done

let test_cache_hit_miss_counters () =
  let engine = mk_engine () in
  let cache = Cache.create ~max_bytes:(1024 * 1024) () in
  let k = mk_key engine [ "xml" ] in
  let t = Trace.create () in
  Trace.with_current t (fun () ->
      Alcotest.(check bool) "cold miss" true (Cache.find cache k = None);
      Cache.add cache k empty_result;
      Alcotest.(check bool) "warm hit" true (Cache.find cache k <> None));
  let s = Cache.stats cache in
  Alcotest.(check int) "stats hits" 1 s.Cache.hits;
  Alcotest.(check int) "stats misses" 1 s.Cache.misses;
  Alcotest.(check int) "trace cache_hits" 1 (Trace.counter t Trace.Cache_hits);
  Alcotest.(check int) "trace cache_misses" 1
    (Trace.counter t Trace.Cache_misses)

let test_cache_lru_eviction_order () =
  let engine = mk_engine () in
  (* One shard, room for exactly two empty results (128 bytes each). *)
  let cache = Cache.create ~shards:1 ~max_bytes:300 () in
  let ka = mk_key engine [ "a" ]
  and kb = mk_key engine [ "b" ]
  and kc = mk_key engine [ "c" ] in
  Cache.add cache ka empty_result;
  Cache.add cache kb empty_result;
  (* Refresh a so b is now the least recently used... *)
  Alcotest.(check bool) "a hit" true (Cache.find cache ka <> None);
  Cache.add cache kc empty_result;
  Alcotest.(check bool) "b evicted" true (Cache.find cache kb = None);
  Alcotest.(check bool) "a kept" true (Cache.find cache ka <> None);
  Alcotest.(check bool) "c kept" true (Cache.find cache kc <> None);
  let s = Cache.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "two live entries" 2 s.Cache.entries

let test_cache_oversized_not_cached () =
  let engine = mk_engine () in
  let cache = Cache.create ~shards:1 ~max_bytes:100 () in
  let k = mk_key engine [ "xml" ] in
  Cache.add cache k empty_result (* 128 bytes > 100-byte shard *);
  Alcotest.(check int) "nothing stored" 0 (Cache.stats cache).Cache.entries

let test_cache_shard_independence () =
  let engine = mk_engine () in
  let cache = Cache.create ~shards:4 ~max_bytes:(4 * 300) () in
  Alcotest.(check int) "shard count" 4 (Cache.shard_count cache);
  (* Many keys spread over shards; each shard holds two 128-byte
     entries, so 16 inserts keep at most 8 but well over 2 — eviction
     pressure in one shard does not wipe the others. *)
  List.iter
    (fun i -> Cache.add cache (mk_key engine [ "w" ^ string_of_int i ]) empty_result)
    (List.init 16 Fun.id);
  let s = Cache.stats cache in
  Alcotest.(check bool) "entries spread beyond one shard" true
    (s.Cache.entries > 2);
  Cache.clear cache;
  Alcotest.(check int) "clear drops everything" 0
    (Cache.stats cache).Cache.entries;
  Alcotest.(check int) "clear keeps counters"
    s.Cache.evictions
    (Cache.stats cache).Cache.evictions

(* Deep LRU stability: with three resident entries and promotions
   between evictions, the victim must always be the least-recently
   *accessed* entry, never insertion order. *)
let test_cache_eviction_order_deep () =
  let engine = mk_engine () in
  (* One shard, room for exactly three 128-byte empty results. *)
  let cache = Cache.create ~shards:1 ~max_bytes:384 () in
  let key w = mk_key engine [ w ] in
  let k1 = key "alpha" and k2 = key "beta" and k3 = key "gamma" in
  let k4 = key "delta" and k5 = key "epsilon" in
  Cache.add cache k1 empty_result;
  Cache.add cache k2 empty_result;
  Cache.add cache k3 empty_result;
  Alcotest.(check int) "three entries fit" 3 (Cache.stats cache).Cache.entries;
  (* Promote k2 over k1, then insert k4: the victim is k1. *)
  Alcotest.(check bool) "promote k2" true (Cache.find cache k2 <> None);
  Cache.add cache k4 empty_result;
  Alcotest.(check bool) "k1 (least recent) evicted" true
    (Cache.find cache k1 = None);
  (* Promote k2 and k3 over k4, then insert k5: the victim is k4 even
     though it is the youngest insertion. *)
  Alcotest.(check bool) "k2 kept" true (Cache.find cache k2 <> None);
  Alcotest.(check bool) "k3 kept" true (Cache.find cache k3 <> None);
  Cache.add cache k5 empty_result;
  Alcotest.(check bool) "k4 evicted despite youngest insert" true
    (Cache.find cache k4 = None);
  Alcotest.(check bool) "k5 resident" true (Cache.find cache k5 <> None);
  let s = Cache.stats cache in
  Alcotest.(check int) "two evictions" 2 s.Cache.evictions;
  Alcotest.(check int) "byte accounting tracks entries" (128 * s.Cache.entries)
    s.Cache.bytes

(* Contention stress: 4 domains hammer keys that all collide on one
   shard (plus periodic clears and stats snapshots), then the global
   accounting must balance exactly — every lookup was either a hit or
   a miss, and bytes never went negative. *)
let test_cache_contention_stress () =
  let engine = mk_engine () in
  let cache = Cache.create ~shards:4 ~max_bytes:(1024 * 1024) () in
  let candidates =
    List.init 64 (fun i -> mk_key engine [ Printf.sprintf "w%d" i ])
  in
  let target =
    match candidates with
    | k :: _ -> Cache.shard_index cache k
    | [] -> Alcotest.fail "no candidate keys"
  in
  let keys =
    List.filter (fun k -> Cache.shard_index cache k = target) candidates
  in
  Alcotest.(check bool) "several keys collide on one shard" true
    (List.length keys >= 4);
  let lookups = Atomic.make 0 in
  let negative_bytes = Atomic.make false in
  let rounds = 60 in
  Pool.with_pool ~size:4 ~oversubscribe:true (fun p ->
      ignore
        (Pool.run_all p
           (List.init 4 (fun d () ->
                for r = 1 to rounds do
                  List.iteri
                    (fun i k ->
                      Atomic.incr lookups;
                      (match Cache.find cache k with
                      | Some _ -> ()
                      | None -> Cache.add cache k empty_result);
                      (* Periodic cross-shard churn from every domain:
                         clear takes each shard lock in turn, stats
                         snapshots them under contention. *)
                      if (r + i + d) mod 17 = 0 then Cache.clear cache;
                      if (i + d) mod 5 = 0 then begin
                        let s = Cache.stats cache in
                        if s.Cache.bytes < 0 then
                          Atomic.set negative_bytes true
                      end)
                    keys
                done))
         : unit array));
  let s = Cache.stats cache in
  Alcotest.(check bool) "bytes never negative" false
    (Atomic.get negative_bytes);
  Alcotest.(check bool) "final bytes non-negative" true (s.Cache.bytes >= 0);
  Alcotest.(check int) "hits + misses = lookups" (Atomic.get lookups)
    (s.Cache.hits + s.Cache.misses);
  Alcotest.(check int) "byte accounting balances" (128 * s.Cache.entries)
    s.Cache.bytes

(* Dynamic lock-discipline replay of the read-mostly path: 4 domains
   drive a 2-shard instrumented cache through a hit-heavy mix (plus
   inserts and clears for write sections), then the journal must replay
   clean — overlapping read sections are fine, but no write section may
   overlap anything and every access must sit in a section its own
   domain opened. *)
let test_cache_read_mostly_journal () =
  let engine = mk_engine () in
  let journal = Race.create () in
  let cache =
    Cache.create ~shards:2 ~max_bytes:(1024 * 1024)
      ~instrument:(Race.instrument journal) ()
  in
  let keys =
    List.init 8 (fun i -> mk_key engine [ Printf.sprintf "jk%d" i ])
  in
  List.iter (fun k -> Cache.add cache k empty_result) keys;
  Pool.with_pool ~size:4 ~oversubscribe:true (fun p ->
      ignore
        (Pool.run_all p
           (List.init 4 (fun d () ->
                for r = 1 to 50 do
                  List.iteri
                    (fun i k ->
                      (match Cache.find cache k with
                      | Some _ -> ()
                      | None -> Cache.add cache k empty_result);
                      if (r + i + d) mod 37 = 0 then Cache.clear cache)
                    keys
                done))
         : unit array));
  let ops = List.map (fun e -> e.Race.op) (Race.events journal) in
  Alcotest.(check bool) "read sections were exercised" true
    (List.mem Race.Rlock ops);
  Alcotest.(check bool) "write sections were exercised" true
    (List.mem Race.Lock ops);
  Alcotest.(check (list string)) "journal replays clean" []
    (List.map Xks_check.Invariant.to_string (Race.check journal))

(* --- batch semantics --- *)

(* The instrument hook is arbitrary user code running inside a lock
   section; if it raises, the shard's rwlock must still be released
   (the locking wrappers protect the hook the same as the section
   body).  A leaked read lock would block the writer below forever, so
   it runs on its own domain against a deadline: a regression fails
   the check instead of hanging the suite. *)
let test_cache_instrument_raise_releases_lock () =
  let engine = mk_engine () in
  let boom = ref true in
  let instrument _idx = function
    | Cache.Read when !boom -> failwith "instrument boom"
    | Cache.Read | Cache.Write | Cache.Lock | Cache.Unlock | Cache.Rlock
    | Cache.Runlock ->
        ()
  in
  let cache = Cache.create ~shards:1 ~instrument ~max_bytes:(1024 * 1024) () in
  let k = mk_key engine [ "xml" ] in
  (match Cache.find cache k with
  | _ -> Alcotest.fail "instrument exception must escape Cache.find"
  | exception Failure _ -> ());
  boom := false;
  let done_flag = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        Cache.add cache k empty_result;
        Atomic.set done_flag true)
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get done_flag)) && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "writer acquired the shard lock after the raise" true
    (Atomic.get done_flag);
  Domain.join writer;
  Alcotest.(check bool) "entry written" true (Cache.find cache k <> None)

let test_budget_class () =
  Alcotest.(check string) "none" "unbudgeted" (Exec.budget_class_of None);
  Alcotest.(check string) "empty spec" "unbudgeted"
    (Exec.budget_class_of (Some { Exec.deadline_ms = None; max_nodes = None }));
  Alcotest.(check string) "deadline only" "t100:n-"
    (Exec.budget_class_of
       (Some { Exec.deadline_ms = Some 100; max_nodes = None }));
  Alcotest.(check string) "both" "t100:n5000"
    (Exec.budget_class_of
       (Some { Exec.deadline_ms = Some 100; max_nodes = Some 5000 }))

let paper_queries =
  [ Fixtures.q1; Fixtures.q2; Fixtures.q3; Fixtures.q4; Fixtures.q5 ]

let hit_list : Engine.hit list Alcotest.testable =
  Alcotest.testable
    (fun fmt hits -> Format.fprintf fmt "<%d hits>" (List.length hits))
    ( = )

let check_batch_matches_sequential engine queries =
  let sequential = List.map (Engine.search engine) queries in
  let cache = Cache.create ~max_bytes:(8 * 1024 * 1024) () in
  (* ~oversubscribe: determinism under 4 real domains is the point,
     whatever the host's core count. *)
  Pool.with_pool ~size:4 ~oversubscribe:true (fun pool ->
      let cold = Exec.search_batch ~pool ~cache engine queries in
      let warm = Exec.search_batch ~pool ~cache engine queries in
      List.iteri
        (fun i seq ->
          Alcotest.check hit_list
            (Printf.sprintf "query %d (cold)" i)
            seq cold.(i);
          Alcotest.check hit_list
            (Printf.sprintf "query %d (cache-served)" i)
            seq warm.(i))
        sequential);
  Alcotest.(check bool) "second pass was cache-served" true
    ((Cache.stats cache).Cache.hits >= List.length queries)

let test_batch_determinism_fixtures () =
  check_batch_matches_sequential
    (Engine.of_doc (Fixtures.publications ()))
    paper_queries;
  check_batch_matches_sequential (Engine.of_doc (Fixtures.team ())) paper_queries

let test_batch_determinism_generated () =
  let doc =
    Xks_datagen.Dblp_gen.(
      generate ~config:{ default_config with entries = 150; seed = 23 } ())
  in
  let idx = Inverted.build doc in
  let queries = Xks_datagen.Workload_gen.generate ~seed:31 ~count:50 idx in
  Alcotest.(check int) "workload size" 50 (List.length queries);
  (* Cross-check the workload itself with the differential oracle
     before trusting it as a determinism baseline. *)
  Alcotest.(check int) "oracle violations" 0
    (List.length (Xks_check.Oracle.check_workload idx queries));
  check_batch_matches_sequential (Engine.of_index idx) queries

let test_batch_budget_semantics () =
  (* A max_nodes budget degrades deterministically (node counts are not
     time-dependent): the batch must degrade exactly like the
     sequential path, per query. *)
  let engine = Engine.of_doc (Fixtures.publications ()) in
  let spec = { Exec.deadline_ms = None; max_nodes = Some 1 } in
  let sequential =
    List.map
      (fun ws ->
        Engine.search_result
          ~budget:(Xks_robust.Budget.create ?max_nodes:spec.Exec.max_nodes ())
          engine ws)
      paper_queries
  in
  Pool.with_pool ~size:4 ~oversubscribe:true (fun pool ->
      let batched =
        Exec.search_batch_results ~pool ~budget:spec engine paper_queries
      in
      List.iteri
        (fun i (seq : Engine.search_result) ->
          Alcotest.check hit_list
            (Printf.sprintf "budgeted query %d hits" i)
            seq.Engine.hits
            batched.(i).Engine.hits;
          Alcotest.(check bool)
            (Printf.sprintf "budgeted query %d degradation" i)
            true
            (seq.Engine.degraded = batched.(i).Engine.degraded))
        sequential)

let test_batch_empty_query_rejected () =
  let engine = mk_engine () in
  Pool.with_pool ~size:2 (fun pool ->
      match Exec.search_batch ~pool engine [ [ "xml" ]; [] ] with
      | _ -> Alcotest.fail "expected Task_error"
      | exception Pool.Task_error (Invalid_argument _) -> ()
      | exception e -> raise e);
  (* Without a pool the raw exception escapes, as Engine.search does. *)
  match Exec.search_batch engine [ [] ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let tests =
  [
    Alcotest.test_case "deque empty behaviour" `Quick test_deque_empty;
    Alcotest.test_case "deque owner LIFO, thief FIFO" `Quick
      test_deque_owner_lifo_thief_fifo;
    Alcotest.test_case "pool preserves input order" `Quick
      test_pool_preserves_order;
    Alcotest.test_case "pool propagates task exceptions" `Quick
      test_pool_propagates_exception;
    Alcotest.test_case "pool rejects submit after shutdown" `Quick
      test_pool_rejects_after_shutdown;
    Alcotest.test_case "pool concurrent shutdown has one winner" `Quick
      test_pool_concurrent_shutdown;
    Alcotest.test_case "pool rejects zero size" `Quick
      test_pool_rejects_zero_size;
    Alcotest.test_case "pool caps at the host's domain count" `Quick
      test_pool_caps_at_domain_count;
    Alcotest.test_case "run_all order preserved under stealing" `Quick
      test_pool_run_all_order_under_stealing;
    Alcotest.test_case "run_all vs concurrent shutdown never hangs" `Quick
      test_pool_run_all_vs_concurrent_shutdown;
    Alcotest.test_case "shutdown drains queued deques" `Quick
      test_pool_shutdown_drains_deques;
    Alcotest.test_case "cache key normalisation" `Quick test_key_normalisation;
    Alcotest.test_case "cache stale invalidation across engines" `Quick
      test_key_stale_invalidation;
    Alcotest.test_case "cache key carries rank mode and k" `Quick
      test_key_rank_params;
    Alcotest.test_case "cache hit/miss counters" `Quick
      test_cache_hit_miss_counters;
    Alcotest.test_case "cache LRU eviction order" `Quick
      test_cache_lru_eviction_order;
    Alcotest.test_case "cache skips oversized results" `Quick
      test_cache_oversized_not_cached;
    Alcotest.test_case "cache shard independence and clear" `Quick
      test_cache_shard_independence;
    Alcotest.test_case "cache eviction order under promotion" `Quick
      test_cache_eviction_order_deep;
    Alcotest.test_case "cache contention stress (4 domains, one shard)" `Quick
      test_cache_contention_stress;
    Alcotest.test_case "cache read-mostly journal replays clean" `Quick
      test_cache_read_mostly_journal;
    Alcotest.test_case "cache releases shard lock when instrument raises"
      `Quick test_cache_instrument_raise_releases_lock;
    Alcotest.test_case "budget class strings" `Quick test_budget_class;
    Alcotest.test_case "jobs=4 determinism on paper fixtures" `Quick
      test_batch_determinism_fixtures;
    Alcotest.test_case "jobs=4 determinism on generated workload" `Slow
      test_batch_determinism_generated;
    Alcotest.test_case "per-query budgets in a batch" `Quick
      test_batch_budget_semantics;
    Alcotest.test_case "empty query aborts the batch" `Quick
      test_batch_empty_query_rejected;
  ]
