(* Measurement machinery of the bench harness (Runner.measure). *)

module Runner = Xks_bench.Runner

let finite ms = Float.is_finite ms && ms >= 0.0

let test_measure_single_rep () =
  (* The regression: reps = 1 used to divide by [reps - 1 = 0] and
     return NaN; now the single timed run is the answer. *)
  let ms, v = Runner.measure ~reps:1 (fun () -> 40 + 2) in
  Alcotest.(check int) "result passed through" 42 v;
  Alcotest.(check bool) "finite, non-negative ms" true (finite ms)

let test_measure_default_reps () =
  let calls = ref 0 in
  let ms, v =
    Runner.measure
      (fun () ->
        incr calls;
        !calls)
  in
  Alcotest.(check int) "default is 6 runs" 6 !calls;
  Alcotest.(check int) "first (warm-up) result returned" 1 v;
  Alcotest.(check bool) "finite, non-negative ms" true (finite ms)

let test_measure_two_reps () =
  let calls = ref 0 in
  let ms, _ = Runner.measure ~reps:2 (fun () -> incr calls) in
  Alcotest.(check int) "two runs" 2 !calls;
  Alcotest.(check bool) "finite" true (finite ms)

let test_measure_zero_reps_rejected () =
  Alcotest.check_raises "reps = 0"
    (Invalid_argument "Runner.measure: reps must be >= 1") (fun () ->
      ignore (Runner.measure ~reps:0 (fun () -> ())))

let tests =
  [
    Alcotest.test_case "measure with a single rep" `Quick
      test_measure_single_rep;
    Alcotest.test_case "measure default reps" `Quick test_measure_default_reps;
    Alcotest.test_case "measure with two reps" `Quick test_measure_two_reps;
    Alcotest.test_case "measure rejects zero reps" `Quick
      test_measure_zero_reps_rejected;
  ]
