(* Measurement machinery of the bench harness (Runner.measure). *)

module Runner = Xks_bench.Runner

let finite ms = Float.is_finite ms && ms >= 0.0

let test_measure_single_rep () =
  (* The regression: reps = 1 used to divide by [reps - 1 = 0] and
     return NaN; now the single timed run is the answer. *)
  let ms, v = Runner.measure ~reps:1 (fun () -> 40 + 2) in
  Alcotest.(check int) "result passed through" 42 v;
  Alcotest.(check bool) "finite, non-negative ms" true (finite ms)

let test_measure_default_reps () =
  let calls = ref 0 in
  let ms, v =
    Runner.measure
      (fun () ->
        incr calls;
        !calls)
  in
  Alcotest.(check int) "default is 6 runs" 6 !calls;
  Alcotest.(check int) "first (warm-up) result returned" 1 v;
  Alcotest.(check bool) "finite, non-negative ms" true (finite ms)

let test_measure_two_reps () =
  let calls = ref 0 in
  let ms, _ = Runner.measure ~reps:2 (fun () -> incr calls) in
  Alcotest.(check int) "two runs" 2 !calls;
  Alcotest.(check bool) "finite" true (finite ms)

let test_measure_zero_reps_rejected () =
  Alcotest.check_raises "reps = 0"
    (Invalid_argument "Runner.measure: reps must be >= 1") (fun () ->
      ignore (Runner.measure ~reps:0 (fun () -> ())))

let test_percentile_nearest_rank () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 0.0)) "p50 of 4" 2.0 (Runner.percentile sorted 50.0);
  Alcotest.(check (float 0.0)) "p95 of 4" 4.0 (Runner.percentile sorted 95.0);
  Alcotest.(check (float 0.0)) "p99 of 4" 4.0 (Runner.percentile sorted 99.0);
  Alcotest.(check (float 0.0)) "p50 of 1" 7.0
    (Runner.percentile [| 7.0 |] 50.0);
  (* p25 of 1..10 under nearest-rank is sample #ceil(2.5) = 3. *)
  let ten = Array.init 10 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p25 of 10" 3.0 (Runner.percentile ten 25.0)

let test_measure_dist () =
  let calls = ref 0 in
  let d, v =
    Runner.measure_dist ~reps:5
      (fun () ->
        incr calls;
        !calls)
  in
  Alcotest.(check int) "five runs" 5 !calls;
  Alcotest.(check int) "warm-up result returned" 1 v;
  List.iter
    (fun (name, ms) ->
      Alcotest.(check bool) (name ^ " finite") true (finite ms))
    [
      ("mean", d.Runner.mean_ms); ("p50", d.Runner.p50_ms);
      ("p95", d.Runner.p95_ms); ("p99", d.Runner.p99_ms);
    ];
  (* Percentiles come from the same warm-excluded sample, so they are
     ordered and bracket the mean. *)
  Alcotest.(check bool) "p50 <= p95" true (d.Runner.p50_ms <= d.Runner.p95_ms);
  Alcotest.(check bool) "p95 <= p99" true (d.Runner.p95_ms <= d.Runner.p99_ms);
  Alcotest.(check bool) "mean <= p99" true (d.Runner.mean_ms <= d.Runner.p99_ms)

let tests =
  [
    Alcotest.test_case "measure with a single rep" `Quick
      test_measure_single_rep;
    Alcotest.test_case "measure default reps" `Quick test_measure_default_reps;
    Alcotest.test_case "measure with two reps" `Quick test_measure_two_reps;
    Alcotest.test_case "measure rejects zero reps" `Quick
      test_measure_zero_reps_rejected;
    Alcotest.test_case "nearest-rank percentile" `Quick
      test_percentile_nearest_rank;
    Alcotest.test_case "measure_dist percentiles" `Quick test_measure_dist;
  ]
