let () =
  Alcotest.run "xks"
    [
      ("util", Test_util.tests);
      ("dewey", Test_dewey.tests);
      ("tokenizer", Test_tokenizer.tests);
      ("parser", Test_parser.tests);
      ("writer", Test_writer.tests);
      ("sax", Test_sax.tests);
      ("path", Test_path.tests);
      ("tree", Test_tree.tests);
      ("index", Test_index.tests);
      ("persist", Test_persist.tests);
      ("robust", Test_robust.tests);
      ("relational", Test_relational.tests);
      ("stream_index", Test_stream_index.tests);
      ("phrase", Test_phrase.tests);
      ("gdmct", Test_gdmct.tests);
      ("lca", Test_lca.tests);
      ("rtf", Test_rtf.tests);
      ("fragment", Test_fragment.tests);
      ("query", Test_query.tests);
      ("prune", Test_prune.tests);
      ("explain", Test_explain.tests);
      ("spec", Test_spec.tests);
      ("axioms", Test_axioms.tests);
      ("metrics", Test_metrics.tests);
      ("bench", Test_bench.tests);
      ("datagen", Test_datagen.tests);
      ("engine", Test_engine.tests);
      ("ranking", Test_ranking.tests);
      ("rank", Test_rank.tests);
      ("extensions", Test_extensions.tests);
      ("check", Test_check.tests);
      ("exec", Test_exec.tests);
      ("serve", Test_serve.tests);
      ("paper_figures", Test_paper_figures.tests);
    ]
