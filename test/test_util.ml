(* The util substrate: growable int vectors, per-domain scratch
   buffers, and binary searches. *)

module Int_vec = Xks_util.Int_vec
module Bsearch = Xks_util.Bsearch
module Scratch = Xks_util.Scratch

let test_int_vec_basics () =
  let v = Int_vec.create () in
  Alcotest.(check int) "empty" 0 (Int_vec.length v);
  for i = 0 to 99 do
    Int_vec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Int_vec.length v);
  Alcotest.(check int) "get" 40 (Int_vec.get v 20);
  Alcotest.(check int) "last" 198 (Int_vec.last v);
  Int_vec.set v 0 7;
  Alcotest.(check int) "set" 7 (Int_vec.get v 0);
  Alcotest.(check int) "pop" 198 (Int_vec.pop v);
  Alcotest.(check int) "pop shrinks" 99 (Int_vec.length v);
  Int_vec.clear v;
  Alcotest.(check int) "clear" 0 (Int_vec.length v)

let test_int_vec_bounds () =
  let v = Int_vec.create () in
  Alcotest.check_raises "get" (Invalid_argument "Int_vec: index") (fun () ->
      ignore (Int_vec.get v 0));
  Alcotest.check_raises "last" (Invalid_argument "Int_vec.last: empty")
    (fun () -> ignore (Int_vec.last v));
  Alcotest.check_raises "pop" (Invalid_argument "Int_vec.pop: empty")
    (fun () -> ignore (Int_vec.pop v))

let test_int_vec_to_array_iter () =
  let v = Int_vec.create ~capacity:1 () in
  List.iter (Int_vec.push v) [ 3; 1; 4; 1; 5 ];
  Alcotest.(check (list int)) "to_array" [ 3; 1; 4; 1; 5 ]
    (Array.to_list (Int_vec.to_array v));
  let acc = ref [] in
  Int_vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 5; 1; 4; 1; 3 ] !acc

let test_int_vec_sort_uniq () =
  let v = Int_vec.create () in
  Int_vec.sort_uniq v;
  Alcotest.(check int) "empty stays empty" 0 (Int_vec.length v);
  List.iter (Int_vec.push v) [ 5; 3; 5; 1; 3; 5; 1; 1; 5 ];
  Int_vec.sort_uniq v;
  Alcotest.(check (list int)) "duplicate-heavy input" [ 1; 3; 5 ]
    (Array.to_list (Int_vec.to_array v));
  Int_vec.clear v;
  List.iter (Int_vec.push v) [ 7; 7; 7; 7 ];
  Int_vec.sort_uniq v;
  Alcotest.(check (list int)) "all-equal input" [ 7 ]
    (Array.to_list (Int_vec.to_array v))

let prop_sort_uniq_matches_spec =
  QCheck2.Test.make ~name:"Int_vec.sort_uniq = List.sort_uniq" ~count:500
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 10))
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))
    (fun l ->
      let v = Int_vec.create () in
      List.iter (Int_vec.push v) l;
      Int_vec.sort_uniq v;
      Array.to_list (Int_vec.to_array v) = List.sort_uniq Int.compare l)

(* The tests below compare buffer identities across checkouts, so they
   deliberately let buffers escape [with_ints] — fine here because only
   physical equality is read, never the contents. *)

let test_scratch_reuse () =
  let first = Scratch.with_ints (fun v -> Int_vec.push v 1; v) in
  Scratch.with_ints (fun v ->
      Alcotest.(check bool) "same buffer checked out again" true (v == first);
      Alcotest.(check int) "cleared on checkout" 0 (Int_vec.length v))

let test_scratch_nesting_and_exceptions () =
  (match
     Scratch.with_ints (fun outer ->
         Scratch.with_ints (fun inner ->
             Alcotest.(check bool) "nested checkout is distinct" true
               (not (outer == inner)));
         raise Exit)
   with
  | exception Exit -> ()
  | () -> Alcotest.fail "Exit swallowed");
  (* both buffers went back to the free list despite the raise *)
  let pair =
    Scratch.with_ints (fun a -> Scratch.with_ints (fun b -> (a, b)))
  in
  Scratch.with_ints (fun a ->
      Scratch.with_ints (fun b ->
          Alcotest.(check bool) "free list survives the raise" true
            (let p, q = pair in a == p && b == q)))

let test_scratch_domain_isolation () =
  let parent = Scratch.with_ints (fun v -> v) in
  let results =
    List.map Domain.join
      (List.init 4 (fun _ ->
           Domain.spawn (fun () ->
               let mine = Scratch.with_ints (fun v -> v) in
               let again = Scratch.with_ints (fun v -> v) in
               (mine, mine == again))))
  in
  List.iter
    (fun (mine, reused) ->
      Alcotest.(check bool) "reused within its own domain" true reused;
      Alcotest.(check bool) "never the parent's buffer" true
        (not (mine == parent)))
    results;
  let rec pairwise = function
    | [] -> ()
    | (a, _) :: rest ->
        List.iter
          (fun (b, _) ->
            Alcotest.(check bool) "distinct across domains" true (not (a == b)))
          rest;
        pairwise rest
  in
  pairwise results

let test_bsearch_bounds () =
  let a = [| 1; 3; 3; 5; 9 |] in
  Alcotest.(check int) "lower_bound present" 1 (Bsearch.lower_bound a 3);
  Alcotest.(check int) "upper_bound present" 3 (Bsearch.upper_bound a 3);
  Alcotest.(check int) "lower_bound absent" 3 (Bsearch.lower_bound a 4);
  Alcotest.(check int) "lower_bound beyond" 5 (Bsearch.lower_bound a 10);
  Alcotest.(check int) "lower_bound before" 0 (Bsearch.lower_bound a 0)

let test_bsearch_matches () =
  let a = [| 2; 4; 6 |] in
  Alcotest.(check (option int)) "left exact" (Some 4) (Bsearch.left_match a 4);
  Alcotest.(check (option int)) "left between" (Some 4) (Bsearch.left_match a 5);
  Alcotest.(check (option int)) "left before" None (Bsearch.left_match a 1);
  Alcotest.(check (option int)) "right exact" (Some 4) (Bsearch.right_match a 4);
  Alcotest.(check (option int)) "right between" (Some 6) (Bsearch.right_match a 5);
  Alcotest.(check (option int)) "right after" None (Bsearch.right_match a 7);
  Alcotest.(check bool) "mem" true (Bsearch.mem a 4);
  Alcotest.(check bool) "not mem" false (Bsearch.mem a 5)

let test_bsearch_ranges () =
  let a = [| 2; 4; 6; 8 |] in
  Alcotest.(check int) "count in range" 2 (Bsearch.count_in_range a ~lo:3 ~hi:7);
  Alcotest.(check int) "empty range" 0 (Bsearch.count_in_range a ~lo:7 ~hi:3);
  Alcotest.(check (option int)) "first in range" (Some 4)
    (Bsearch.first_in_range a ~lo:3 ~hi:7);
  Alcotest.(check (option int)) "no first" None
    (Bsearch.first_in_range a ~lo:9 ~hi:20)

let gen_sorted =
  QCheck2.Gen.(
    map
      (fun l -> Array.of_list (List.sort compare l))
      (list_size (int_range 0 30) (int_range 0 50)))

let prop_bounds_consistent =
  QCheck2.Test.make ~name:"lower/upper bounds bracket the value" ~count:500
    QCheck2.Gen.(pair gen_sorted (int_range 0 50))
    (fun (a, x) ->
      let lo = Xks_util.Bsearch.lower_bound a x in
      let hi = Xks_util.Bsearch.upper_bound a x in
      lo <= hi
      && (lo = 0 || a.(lo - 1) < x)
      && (lo = Array.length a || a.(lo) >= x)
      && (hi = Array.length a || a.(hi) > x)
      && Xks_util.Bsearch.mem a x = (hi > lo))

let prop_matches_agree_with_spec =
  QCheck2.Test.make ~name:"left/right match = linear scan" ~count:500
    QCheck2.Gen.(pair gen_sorted (int_range 0 50))
    (fun (a, x) ->
      let l = Array.to_list a in
      Xks_util.Bsearch.left_match a x
      = List.fold_left (fun acc y -> if y <= x then Some y else acc) None l
      && Xks_util.Bsearch.right_match a x
         = List.fold_left
             (fun acc y ->
               match acc with Some _ -> acc | None -> if y >= x then Some y else None)
             None l)

let tests =
  [
    Alcotest.test_case "int_vec basics" `Quick test_int_vec_basics;
    Alcotest.test_case "int_vec bounds" `Quick test_int_vec_bounds;
    Alcotest.test_case "int_vec to_array/iter" `Quick test_int_vec_to_array_iter;
    Alcotest.test_case "int_vec sort_uniq edge cases" `Quick
      test_int_vec_sort_uniq;
    Helpers.qtest prop_sort_uniq_matches_spec;
    Alcotest.test_case "scratch buffer reuse" `Quick test_scratch_reuse;
    Alcotest.test_case "scratch nesting and exception safety" `Quick
      test_scratch_nesting_and_exceptions;
    Alcotest.test_case "scratch domain isolation" `Quick
      test_scratch_domain_isolation;
    Alcotest.test_case "bsearch bounds" `Quick test_bsearch_bounds;
    Alcotest.test_case "bsearch matches" `Quick test_bsearch_matches;
    Alcotest.test_case "bsearch ranges" `Quick test_bsearch_ranges;
    Helpers.qtest prop_bounds_consistent;
    Helpers.qtest prop_matches_agree_with_spec;
  ]
