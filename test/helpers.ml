(* Shared test utilities: tiny-document construction, random document
   generators for property tests, and common Alcotest checkers. *)

module Tree = Xks_xml.Tree
module Dewey = Xks_xml.Dewey

let dewey_of_string = Dewey.of_string

(* Id of the node at a paper-style Dewey string, e.g. "0.2.0.3.0". *)
let id_at doc s =
  match Tree.find_by_dewey doc (dewey_of_string s) with
  | Some n -> n.Tree.id
  | None -> Alcotest.failf "no node at dewey %s" s

let ids_at doc ss = List.map (id_at doc) ss

let dewey_str doc id = Dewey.to_string (Tree.node doc id).Tree.dewey
let deweys_of doc ids = List.map (dewey_str doc) ids

(* Alcotest checkers. *)
let sorted_ids = Alcotest.(list int)

let check_ids doc msg expected_deweys actual_ids =
  Alcotest.(check (list string)) msg expected_deweys (deweys_of doc actual_ids)

let check_fragment doc msg expected_deweys frag =
  let actual = deweys_of doc (Xks_core.Fragment.members_list frag) in
  Alcotest.(check (list string))
    msg
    (List.sort compare expected_deweys)
    (List.sort compare actual)

(* Random document generation for QCheck properties.  Small label and word
   alphabets force the label collisions and keyword sharing the algorithms
   care about. *)
let labels = [| "a"; "b"; "c"; "d" |]
let words = [| "w0"; "w1"; "w2"; "w3"; "w4" |]

let gen_doc_sized =
  QCheck2.Gen.(
    sized_size (int_range 1 25) @@ fix (fun self n ->
        let label = oneofa labels in
        let text =
          oneof
            [
              return "";
              map (fun w -> w) (oneofa words);
              map2 (fun a b -> a ^ " " ^ b) (oneofa words) (oneofa words);
            ]
        in
        if n <= 1 then
          map2 (fun l t -> Tree.elem ~text:t l []) label text
        else
          let child_count = int_range 1 (min 4 n) in
          bind child_count (fun c ->
              let sub = self ((n - 1) / c) in
              map3
                (fun l t children -> Tree.elem ~text:t l children)
                label text
                (list_size (return c) sub))))

let gen_doc = QCheck2.Gen.map Tree.build gen_doc_sized

let print_doc doc = Xks_xml.Writer.to_string ~declaration:false doc

(* A random non-empty keyword query over the small word alphabet. *)
let gen_query =
  QCheck2.Gen.(
    map
      (fun ws -> List.sort_uniq compare ws)
      (list_size (int_range 1 3) (oneofa words)))

let postings_for doc query_words =
  let idx = Xks_index.Inverted.build doc in
  Array.of_list (List.map (Xks_index.Inverted.posting idx) query_words)

(* Run an Alcotest-compatible QCheck test. *)
let qtest = QCheck_alcotest.to_alcotest

(* Substring test, for asserting on error-message wording. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0
