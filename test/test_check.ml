(* Tests for lib/check: the dynamic invariant checker and the
   differential oracle.  The load-bearing property is sensitivity — a
   deliberately broken SLCA implementation must be flagged — plus the
   converse: the real pipeline over the paper fixtures audits clean. *)

module Fixtures = Xks_datagen.Paper_fixtures
module Inverted = Xks_index.Inverted
module Naive = Xks_lca.Naive
module Invariant = Xks_check.Invariant
module Oracle = Xks_check.Oracle
module Race = Xks_check.Race
module Cache = Xks_exec.Cache

let publications_index () = Inverted.build (Fixtures.publications ())

let postings_for idx keywords = Inverted.postings idx keywords

let rules violations = List.map (fun (v : Invariant.violation) -> v.rule) violations

(* --- oracle sensitivity: broken implementations must be caught --- *)

let test_oracle_flags_broken_slca () =
  let idx = publications_index () in
  let doc = Inverted.doc idx in
  let postings = postings_for idx Fixtures.q2 in
  (* "Broken" SLCA: reports the ELCA set instead.  On q2 over the
     Figure 1(a) document the two differ — the ELCA set {4, 13} keeps an
     ancestor that the SLCA set {13} excludes. *)
  let broken =
    { Oracle.name = "broken-elca-as-slca"; compute = Naive.elca }
  in
  let violations = Oracle.slca ~impls:[ broken ] doc postings in
  Alcotest.(check bool) "broken impl flagged" true (violations <> []);
  List.iter
    (fun (v : Invariant.violation) ->
      Alcotest.(check string) "rule id" "oracle-slca" v.rule;
      Alcotest.(check bool)
        "names the implementation" true
        (Helpers.contains v.detail "broken-elca-as-slca"))
    violations

let test_oracle_flags_dropped_result () =
  let idx = publications_index () in
  let doc = Inverted.doc idx in
  let postings = postings_for idx Fixtures.q1 in
  let broken =
    {
      Oracle.name = "broken-drop-first";
      compute =
        (fun doc postings ->
          match Naive.slca doc postings with [] -> [] | _ :: rest -> rest);
    }
  in
  let violations = Oracle.slca ~impls:[ broken ] doc postings in
  Alcotest.(check bool) "dropped result flagged" true (violations <> [])

let test_oracle_flags_broken_elca () =
  let idx = publications_index () in
  let doc = Inverted.doc idx in
  let postings = postings_for idx Fixtures.q1 in
  let broken = { Oracle.name = "broken-empty"; compute = (fun _ _ -> []) } in
  let violations = Oracle.elca ~impls:[ broken ] doc postings in
  Alcotest.(check (list string)) "rule ids" [ "oracle-elca" ] (rules violations)

(* --- oracle soundness: the real implementations audit clean --- *)

let test_real_impls_clean () =
  let idx = publications_index () in
  let doc = Inverted.doc idx in
  List.iter
    (fun q ->
      let postings = postings_for idx q in
      Alcotest.(check (list string))
        "elca impls agree" [] (rules (Oracle.elca doc postings));
      Alcotest.(check (list string))
        "slca impls agree" [] (rules (Oracle.slca doc postings)))
    [ Fixtures.q1; Fixtures.q2; Fixtures.q3; Fixtures.q4; Fixtures.q5 ]

let test_check_query_clean () =
  let idx = publications_index () in
  let violations =
    List.concat_map (Oracle.check_query idx)
      [ Fixtures.q1; Fixtures.q2; Fixtures.q3; Fixtures.q4; Fixtures.q5 ]
  in
  Alcotest.(check (list string)) "full audit clean" [] (rules violations)

(* --- invariant checks: corrupted inputs must be flagged --- *)

let test_posting_flags_unsorted () =
  let doc = Fixtures.publications () in
  let sorted = Inverted.posting (publications_index ()) "xml" in
  Alcotest.(check (list string)) "clean posting" [] (rules (Invariant.posting doc sorted));
  let unsorted = Array.of_list (List.rev (Array.to_list sorted)) in
  Alcotest.(check bool)
    "reversed posting flagged" true
    (Invariant.posting doc unsorted <> []);
  let dup = Array.append sorted [| sorted.(0) |] in
  Alcotest.(check bool)
    "duplicate flagged" true
    (Invariant.posting doc dup <> [])

let test_posting_flags_out_of_range () =
  let doc = Fixtures.publications () in
  let violations = Invariant.posting doc [| Xks_xml.Tree.size doc |] in
  Alcotest.(check bool) "out-of-range id flagged" true (violations <> [])

let test_doc_order_flags_shuffle () =
  let doc = Fixtures.publications () in
  let ids = Inverted.posting (publications_index ()) "xml" in
  Alcotest.(check (list string))
    "clean doc order" [] (rules (Invariant.doc_order doc ids));
  if Array.length ids >= 2 then begin
    let shuffled = Array.copy ids in
    let tmp = shuffled.(0) in
    shuffled.(0) <- shuffled.(Array.length ids - 1);
    shuffled.(Array.length ids - 1) <- tmp;
    Alcotest.(check bool)
      "swapped ids flagged" true
      (Invariant.doc_order doc shuffled <> [])
  end

let test_index_invariant_clean () =
  Alcotest.(check (list string))
    "whole index clean" [] (rules (Invariant.index (publications_index ())))

(* --- dynamic race checker: journal replay sensitivity --- *)

let test_race_journal_clean () =
  let j = Race.create () in
  Race.record j ~shard:0 Race.Lock;
  Race.record j ~shard:0 Race.Read;
  Race.record j ~shard:0 Race.Write;
  Race.record j ~shard:0 Race.Unlock;
  Race.record j ~shard:1 Race.Lock;
  Race.record j ~shard:1 Race.Unlock;
  Alcotest.(check (list string)) "well-nested journal is clean" []
    (rules (Race.check j));
  Alcotest.(check int) "all events kept" 6 (Race.length j)

let test_race_flags_unlocked_access () =
  let j = Race.create () in
  Race.record j ~shard:0 Race.Lock;
  Race.record j ~shard:0 Race.Unlock;
  Race.record j ~shard:0 Race.Write;
  Alcotest.(check (list string)) "write after unlock flagged"
    [ "race-unlocked-access" ]
    (rules (Race.check j))

let test_race_flags_double_and_leaked_lock () =
  let j = Race.create () in
  Race.record j ~shard:2 Race.Lock;
  Race.record j ~shard:2 Race.Lock;
  Alcotest.(check (list string)) "relock while held, then never released"
    [ "race-double-lock"; "race-leaked-lock" ]
    (rules (Race.check j))

let test_race_flags_unheld_unlock () =
  let j = Race.create () in
  Race.record j ~shard:3 Race.Unlock;
  Alcotest.(check (list string)) "unlock of an unheld shard"
    [ "race-unheld-unlock" ]
    (rules (Race.check j))

(* End to end: a cache created with the Race adapter journals its own
   lock discipline, and the journal replays clean. *)
let test_race_instrumented_cache_clean () =
  let engine = Xks_core.Engine.of_string "<r><a>xml search</a></r>" in
  let j = Race.create () in
  let cache =
    Cache.create ~shards:2 ~instrument:(Race.instrument j)
      ~max_bytes:(1024 * 1024) ()
  in
  let key w =
    match
      Cache.key ~engine ~algorithm:Xks_core.Engine.Validrtf
        ~budget_class:Cache.unbudgeted [ w ]
    with
    | Some k -> k
    | None -> Alcotest.fail "expected a cache key"
  in
  let empty = { Xks_core.Engine.hits = []; degraded = None } in
  List.iter
    (fun i ->
      let k = key (Printf.sprintf "w%d" i) in
      (match Cache.find cache k with
      | Some _ -> ()
      | None -> Cache.add cache k empty);
      ignore (Cache.find cache k : Xks_core.Engine.search_result option))
    (List.init 8 Fun.id);
  ignore (Cache.stats cache : Cache.stats);
  Cache.clear cache;
  Alcotest.(check bool) "journal recorded events" true (Race.length j > 0);
  Alcotest.(check (list string)) "instrumented cache replays clean" []
    (rules (Race.check j))

let tests =
  [
    Alcotest.test_case "oracle flags broken slca" `Quick
      test_oracle_flags_broken_slca;
    Alcotest.test_case "oracle flags dropped result" `Quick
      test_oracle_flags_dropped_result;
    Alcotest.test_case "oracle flags broken elca" `Quick
      test_oracle_flags_broken_elca;
    Alcotest.test_case "real impls audit clean" `Quick test_real_impls_clean;
    Alcotest.test_case "check_query clean on fixtures" `Quick
      test_check_query_clean;
    Alcotest.test_case "posting flags unsorted/dup" `Quick
      test_posting_flags_unsorted;
    Alcotest.test_case "posting flags out-of-range" `Quick
      test_posting_flags_out_of_range;
    Alcotest.test_case "doc_order flags shuffle" `Quick
      test_doc_order_flags_shuffle;
    Alcotest.test_case "index invariant clean" `Quick test_index_invariant_clean;
    Alcotest.test_case "race journal clean" `Quick test_race_journal_clean;
    Alcotest.test_case "race flags unlocked access" `Quick
      test_race_flags_unlocked_access;
    Alcotest.test_case "race flags double and leaked lock" `Quick
      test_race_flags_double_and_leaked_lock;
    Alcotest.test_case "race flags unheld unlock" `Quick
      test_race_flags_unheld_unlock;
    Alcotest.test_case "race journal clean on instrumented cache" `Quick
      test_race_instrumented_cache_clean;
  ]
