(* End-to-end engine facade and ranking. *)

module Engine = Xks_core.Engine
module Ranking = Xks_core.Ranking

let library_xml =
  "<library><shelf><book><title>xml keyword search basics</title><blurb>intro \
   text</blurb></book><book><title>cooking</title><blurb>xml-free \
   recipes</blurb></book></shelf><paper><title>xml search \
   engines</title></paper></library>"

let test_search_end_to_end () =
  let engine = Engine.of_string library_xml in
  let hits = Engine.search engine [ "xml"; "search" ] in
  Alcotest.(check bool) "has results" true (hits <> []);
  List.iter
    (fun (h : Engine.hit) ->
      Alcotest.(check bool) "positive score" true (h.Engine.score > 0.0))
    hits;
  (* Ranked order is by decreasing score. *)
  let scores = List.map (fun (h : Engine.hit) -> h.Engine.score) hits in
  Alcotest.(check (list (float 1e-9))) "sorted" (List.sort (Fun.flip compare) scores) scores

let test_search_no_results () =
  let engine = Engine.of_string library_xml in
  Alcotest.(check int) "missing keyword" 0
    (List.length (Engine.search engine [ "xml"; "zebra" ]))

let test_algorithms_differ_when_expected () =
  let engine =
    Engine.of_string
      "<r><t>w1</t><abs>w1 w2</abs><z>w3</z></r>"
  in
  let v = Engine.search engine ~algorithm:Engine.Validrtf [ "w1"; "w2"; "w3" ] in
  let m = Engine.search engine ~algorithm:Engine.Maxmatch [ "w1"; "w2"; "w3" ] in
  match (v, m) with
  | [ hv ], [ hm ] ->
      Alcotest.(check bool) "ValidRTF keeps more" true
        (Xks_core.Fragment.size hv.Engine.fragment
        > Xks_core.Fragment.size hm.Engine.fragment)
  | _ -> Alcotest.fail "expected one hit each"

let test_slca_flag () =
  let engine = Engine.of_string "<r><art><n>w1</n><t>w2</t><ref>w1 w2</ref></art></r>" in
  let hits = Engine.search ~rank:`Doc engine [ "w1"; "w2" ] in
  match hits with
  | [ outer; inner ] ->
      Alcotest.(check bool) "outer LCA is not an SLCA" false outer.Engine.is_slca;
      Alcotest.(check bool) "inner is the SLCA" true inner.Engine.is_slca
  | l -> Alcotest.failf "expected 2 hits, got %d" (List.length l)

let test_render_modes () =
  let engine = Engine.of_string library_xml in
  match Engine.search engine [ "cooking" ] with
  | [ hit ] ->
      let tree_view = Engine.render engine hit in
      let xml_view = Engine.render ~xml:true engine hit in
      Alcotest.(check bool) "tree view mentions the dewey" true
        (String.length tree_view > 0 && tree_view.[0] = '0');
      Alcotest.(check bool) "xml view is xml" true (xml_view.[0] = '<')
  | l -> Alcotest.failf "expected 1 hit, got %d" (List.length l)

let test_of_file () =
  let doc = Xks_datagen.Paper_fixtures.publications () in
  let path = Filename.temp_file "xks_engine" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xks_xml.Writer.to_file path doc;
      let engine = Engine.of_file path in
      let hits = Engine.search engine Xks_datagen.Paper_fixtures.q2 in
      Alcotest.(check int) "two RTFs for Q2" 2 (List.length hits))

let test_stats () =
  let engine = Engine.of_string library_xml in
  Alcotest.(check bool) "stats mentions nodes" true
    (String.length (Engine.stats engine) > 0)

let test_empty_query_rejected () =
  let engine = Engine.of_string library_xml in
  Alcotest.check_raises "empty" (Invalid_argument "Query.make: empty query")
    (fun () -> ignore (Engine.search engine []))

(* Ranking sanity: a deep specific hit outranks the document root. *)
let test_ranking_prefers_specific () =
  let engine =
    Engine.of_string
      "<db><item><name>w1 w2</name></item><other>w1</other><misc>w2</misc></db>"
  in
  let hits = Engine.search engine [ "w1"; "w2" ] in
  match hits with
  | first :: _ ->
      let root_node = Xks_xml.Tree.node (Engine.doc engine) first.Engine.rtf.Xks_core.Rtf.lca in
      Alcotest.(check bool) "deep fragment first" true
        (Xks_xml.Dewey.depth root_node.Xks_xml.Tree.dewey > 0)
  | [] -> Alcotest.fail "expected hits"

(* The degradation signal must survive an empty hit list: a budgeted
   query over a missing keyword exhausts on the present keywords'
   postings, degrades all the way down, and the floor returns zero hits
   — only [search_result] (and the trace) can report that. *)
let test_search_result_degraded_empty () =
  let engine = Engine.of_string library_xml in
  let budget = Xks_robust.Budget.create ~max_nodes:0 () in
  let t = Xks_trace.Trace.create () in
  let result =
    Xks_trace.Trace.with_current t (fun () ->
        Engine.search_result ~budget engine [ "xml"; "zebra" ])
  in
  Alcotest.(check int) "no hits" 0 (List.length result.Engine.hits);
  Alcotest.(check bool) "degradation reported" true
    (result.Engine.degraded = Some Xks_robust.Budget.Node_budget);
  (* The per-hit accessor is blind here — the signal-loss bug this
     closes. *)
  Alcotest.(check bool) "hit-list accessor sees nothing" true
    (Engine.degraded_reason result.Engine.hits = None);
  Alcotest.(check int) "exactly one degradation event" 1
    (Xks_trace.Trace.counter t Xks_trace.Trace.Degradations);
  Alcotest.(check (list string)) "reason recorded" [ "node budget" ]
    (Xks_trace.Trace.degradation_events t)

let test_search_result_degraded_nonempty () =
  let engine = Engine.of_string library_xml in
  let budget = Xks_robust.Budget.create ~max_nodes:0 () in
  let t = Xks_trace.Trace.create () in
  let result =
    Xks_trace.Trace.with_current t (fun () ->
        Engine.search_result ~budget engine [ "xml"; "search" ])
  in
  Alcotest.(check bool) "floor still answers" true (result.Engine.hits <> []);
  Alcotest.(check bool) "degraded" true
    (result.Engine.degraded = Some Xks_robust.Budget.Node_budget);
  Alcotest.(check bool) "hits agree with the result" true
    (Engine.degraded_reason result.Engine.hits = result.Engine.degraded);
  Alcotest.(check int) "exactly one degradation event" 1
    (Xks_trace.Trace.counter t Xks_trace.Trace.Degradations);
  Alcotest.(check bool) "budget ticks counted" true
    (Xks_trace.Trace.counter t Xks_trace.Trace.Budget_ticks > 0)

let test_search_result_clean_run () =
  let engine = Engine.of_string library_xml in
  let result = Engine.search_result engine [ "xml"; "search" ] in
  Alcotest.(check bool) "hits" true (result.Engine.hits <> []);
  Alcotest.(check bool) "not degraded" true (result.Engine.degraded = None);
  (* search is search_result's hit list. *)
  Alcotest.(check int) "search agrees" (List.length result.Engine.hits)
    (List.length (Engine.search engine [ "xml"; "search" ]))

let test_parallel_pruning_identical () =
  (* Enough RTFs to engage the striping. *)
  let doc =
    Xks_datagen.Xmark_gen.generate
      ~config:{ Xks_datagen.Xmark_gen.default_config with items = 8 }
      Xks_datagen.Xmark_gen.Standard
  in
  let idx = Xks_index.Inverted.build doc in
  let q = Xks_core.Query.make idx [ "description"; "order" ] in
  let run domains =
    Xks_core.Pipeline.run_query ~domains ~lca:Elca_indexed_stack
      ~pruning:Valid_contributor q
  in
  let sequential = run 1 and parallel = run 4 in
  Alcotest.(check bool) "enough rtfs to stripe" true
    (List.length sequential.Xks_core.Pipeline.fragments >= 8);
  Alcotest.(check bool) "identical fragments" true
    (List.for_all2 Xks_core.Fragment.equal
       sequential.Xks_core.Pipeline.fragments
       parallel.Xks_core.Pipeline.fragments)

let tests =
  [
    Alcotest.test_case "end-to-end search" `Quick test_search_end_to_end;
    Alcotest.test_case "no results" `Quick test_search_no_results;
    Alcotest.test_case "algorithm choice matters" `Quick test_algorithms_differ_when_expected;
    Alcotest.test_case "slca flag" `Quick test_slca_flag;
    Alcotest.test_case "render modes" `Quick test_render_modes;
    Alcotest.test_case "of_file" `Quick test_of_file;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "empty query rejected" `Quick test_empty_query_rejected;
    Alcotest.test_case "ranking prefers specific results" `Quick test_ranking_prefers_specific;
    Alcotest.test_case "degraded empty result keeps the signal" `Quick
      test_search_result_degraded_empty;
    Alcotest.test_case "degraded non-empty result" `Quick
      test_search_result_degraded_nonempty;
    Alcotest.test_case "clean search_result" `Quick test_search_result_clean_run;
    Alcotest.test_case "parallel pruning is identical" `Quick test_parallel_pruning_identical;
  ]
