(* Auction-site scenario: generate an XMark-shaped document, run the
   paper's workload mnemonics and show where ValidRTF's
   valid-contributor pruning goes beyond MaxMatch's contributor.

     dune exec examples/xmark_compare.exe
*)

module Engine = Xks_core.Engine
module Xmark = Xks_datagen.Xmark_gen
module Queries = Xks_datagen.Queries
module Metrics = Xks_metrics.Metrics

let () =
  let config = { Xmark.default_config with items = 20 } in
  print_endline "generating XMark-like auction site (standard size)...";
  let doc = Xmark.generate ~config Xmark.Standard in
  let engine = Engine.of_doc doc in
  Printf.printf "indexed: %s\n\n" (Engine.stats engine);
  Printf.printf "%-8s %8s %8s %8s %8s %8s\n" "query" "results" "CFR" "APR'"
    "MaxAPR" "common";
  List.iter
    (fun (mnemonic, query) ->
      let validrtf = Engine.run ~algorithm:Engine.Validrtf engine query in
      let maxmatch = Engine.run ~algorithm:Engine.Maxmatch engine query in
      let m = Metrics.compare_results ~validrtf ~maxmatch in
      Printf.printf "%-8s %8d %8.3f %8.3f %8.3f %8d\n" mnemonic
        m.Metrics.lca_count m.Metrics.cfr m.Metrics.apr' m.Metrics.max_apr
        m.Metrics.common)
    Queries.xmark.Queries.queries;
  print_newline ();
  (* Zoom into one query where the two mechanisms differ. *)
  let mnemonic, query = List.nth Queries.xmark.Queries.queries 4 in
  Printf.printf "detail for %s (%s):\n" mnemonic (String.concat " " query);
  let v = Engine.search ~rank:`Heuristic engine query in
  match v with
  | top :: _ ->
      Printf.printf "top ValidRTF fragment (%d nodes):\n%s"
        (Xks_core.Fragment.size top.Engine.fragment)
        (Engine.render engine top)
  | [] -> print_endline "(no results)"
