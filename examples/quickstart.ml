(* Quickstart: run the paper's five example queries on the Figure 1 data
   and print the fragments of Figures 2 and 3.

     dune exec examples/quickstart.exe
*)

module Engine = Xks_core.Engine
module Fixtures = Xks_datagen.Paper_fixtures

let run_query engine title query =
  Printf.printf "=== %s : \"%s\" ===\n" title (String.concat " " query);
  let show name algorithm =
    Printf.printf "--- %s ---\n" name;
    let hits = Engine.search ~algorithm ~rank:`Doc engine query in
    if hits = [] then print_endline "(no results)"
    else
      List.iter
        (fun (hit : Engine.hit) ->
          Printf.printf "%s fragment (%d nodes)%s:\n%s"
            (if hit.is_slca then "SLCA" else "LCA")
            (Xks_core.Fragment.size hit.fragment)
            (Printf.sprintf ", score %.2f" hit.score)
            (Engine.render engine hit))
        hits
  in
  show "ValidRTF" Engine.Validrtf;
  show "MaxMatch (revised)" Engine.Maxmatch;
  print_newline ()

let () =
  let publications = Engine.of_doc (Fixtures.publications ()) in
  let team = Engine.of_doc (Fixtures.team ()) in
  Printf.printf "Publications data: %s\n" (Engine.stats publications);
  Printf.printf "Team data: %s\n\n" (Engine.stats team);
  run_query publications "Q1 (false positive example, figs 3b/3c)" Fixtures.q1;
  run_query publications "Q2 (SLCA vs LCA, figs 2a/2b)" Fixtures.q2;
  run_query publications "Q3 (running example, figs 2c/2d)" Fixtures.q3;
  run_query team "Q4 (redundancy example, fig 3d)" Fixtures.q4;
  run_query team "Q5 (positive example, fig 3a)" Fixtures.q5
